"""Structured tracing and metrics for the simulation stack.

The observability layer the paper's methodology implies: every number in a
figure is the end of a *behavior → load → latency* chain, and this package
records the intermediate links — scheduler boosts, page faults, wire bytes,
queue depths — as structured events and metrics instead of discarding them.

Three pieces:

* :class:`Observation` (:func:`observe` / :func:`current_observation`) —
  the ambient recording context.  Components built inside a
  ``with observe():`` block instrument themselves; outside one, every
  instrumentation site is a single ``is not None`` test (zero cost).
* :class:`MetricsRegistry` — named :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` instruments with deterministic snapshots.
* :mod:`~repro.obs.serialize` — byte-stable JSONL/JSON artifacts; the same
  run serializes to the same bytes whether it executed serially, on worker
  processes, or replayed from the result cache.

``python -m repro trace fig1 --seed 1 --trace-dir out/`` is the canonical
consumer; ``tests/golden/`` locks the output down byte-for-byte.
"""

from .metrics import (
    DEFAULT_BOUNDS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ObservabilityError,
    bucket_quantile,
)
from .serialize import (
    RunObservations,
    dumps_event,
    dumps_snapshot,
    merge_counters,
    metrics_document,
    summary_rows,
    trace_lines,
    write_run_artifacts,
)
from .tracer import (
    DEFAULT_MAX_EVENTS,
    CompactSnapshot,
    NullTracer,
    Observation,
    ReferenceTracer,
    Tracer,
    current_observation,
    observe,
)

__all__ = [
    "DEFAULT_BOUNDS_MS",
    "DEFAULT_MAX_EVENTS",
    "CompactSnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "ObservabilityError",
    "Observation",
    "ReferenceTracer",
    "RunObservations",
    "Tracer",
    "bucket_quantile",
    "current_observation",
    "dumps_event",
    "dumps_snapshot",
    "merge_counters",
    "metrics_document",
    "observe",
    "summary_rows",
    "trace_lines",
    "write_run_artifacts",
]
