"""Evans et al.'s memory protection for interactive processes (§5.2).

The paper demonstrates a pathology: a streaming, non-interactive job pages
an idle interactive application out to disk, so the user's next keystroke
costs seconds instead of milliseconds.  Evans et al.'s prototype SVR4 kernel
eliminated it by **throttling non-interactive processes in high-load
situations**; the paper recommends thin-client operating systems "make some
provision to reserve physical memory for interactive processes".

:class:`ThrottledVirtualMemory` implements both halves of that provision:

* **working-set protection** — when choosing a victim frame for a
  *non-interactive* process's fault, frames owned by interactive processes
  are skipped while any other candidate exists;
* **fault-rate throttling** — once free memory falls below
  ``pressure_threshold`` (as a fraction of the pool), each fault by a
  non-interactive process pays an extra ``throttle_ms`` penalty, slowing
  the stream enough that interactive pages survive.

This is the ablation substrate for ``benchmarks/test_abl_mem_throttle.py``.
"""

from __future__ import annotations

from typing import List, Optional

from .pagetable import AddressSpace
from .physical import Frame
from .vm import AccessResult, VirtualMemory


class ThrottledVirtualMemory(VirtualMemory):
    """Demand paging that shields interactive processes from streamers."""

    def __init__(
        self,
        *args,
        pressure_threshold: float = 0.05,
        throttle_ms: float = 20.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.pressure_threshold = pressure_threshold
        self.throttle_ms = throttle_ms
        self.throttled_faults = 0
        self.protected_skips = 0

    # -- working-set protection ---------------------------------------------

    def _select_victim(self, requester: AddressSpace) -> Optional[Frame]:
        """Prefer victims not owned by interactive processes.

        Interactive requesters keep plain policy order — the protection
        only constrains what *non-interactive* faults may steal.
        """
        if requester.interactive:
            return super()._select_victim(requester)
        skipped: List[Frame] = []
        victim: Optional[Frame] = None
        while len(self.policy) > 0:
            candidate = self.policy.select_victim()
            owner = candidate.owner
            if isinstance(owner, AddressSpace) and owner.interactive:
                skipped.append(candidate)
                self.protected_skips += 1
            else:
                victim = candidate
                break
        # Reinsert protected frames in their original recency order.
        for frame in skipped:
            self.policy.insert(frame)
        if victim is None and skipped:
            # Nothing else left: fall back to evicting an interactive page
            # rather than failing the allocation.
            victim = self.policy.select_victim()
        return victim

    # -- fault-rate throttling -----------------------------------------------

    @property
    def under_pressure(self) -> bool:
        """True when free memory is below the throttling threshold."""
        return (
            self.pool.free_frames
            < self.pool.total_frames * self.pressure_threshold
        )

    def touch(
        self, space: AddressSpace, vpn: int, *, write: bool = False
    ) -> AccessResult:
        pressured = self.under_pressure
        result = super().touch(space, vpn, write=write)
        if result.faulted and pressured and not space.interactive:
            self.throttled_faults += 1
            result.latency_ms += self.throttle_ms
        return result
