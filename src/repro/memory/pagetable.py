"""Per-process page tables and address spaces."""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import MemoryError_
from .physical import Frame


class AddressSpace:
    """A process's virtual memory: ``num_pages`` pages, a resident subset.

    The page table maps virtual page numbers (vpn) to physical frames for
    the resident pages; everything else lives on the paging disk.
    """

    def __init__(
        self,
        name: str,
        num_pages: int,
        *,
        interactive: bool = False,
    ) -> None:
        if num_pages <= 0:
            raise MemoryError_("address space needs at least one page")
        self.name = name
        self.num_pages = num_pages
        #: Interactive processes are the beneficiaries of Evans et al.'s
        #: throttling/working-set protection (see repro.memory.throttle).
        self.interactive = interactive
        self._table: Dict[int, Frame] = {}

        # Accounting.
        self.faults = 0
        self.hits = 0
        self.evicted_pages = 0

    def _check_vpn(self, vpn: int) -> None:
        if not 0 <= vpn < self.num_pages:
            raise MemoryError_(
                f"{self.name}: vpn {vpn} out of range [0, {self.num_pages})"
            )

    def lookup(self, vpn: int) -> Optional[Frame]:
        """The frame holding *vpn*, or None if not resident."""
        self._check_vpn(vpn)
        return self._table.get(vpn)

    def map(self, vpn: int, frame: Frame) -> None:
        """Install the translation vpn → frame."""
        self._check_vpn(vpn)
        if vpn in self._table:
            raise MemoryError_(f"{self.name}: vpn {vpn} already mapped")
        frame.owner = self
        frame.vpn = vpn
        self._table[vpn] = frame

    def unmap(self, vpn: int) -> Frame:
        """Remove the translation for *vpn*, returning its frame."""
        self._check_vpn(vpn)
        frame = self._table.pop(vpn, None)
        if frame is None:
            raise MemoryError_(f"{self.name}: vpn {vpn} is not resident")
        frame.owner = None
        frame.vpn = None
        self.evicted_pages += 1
        return frame

    @property
    def resident_pages(self) -> int:
        """How many of this space's pages are in physical memory."""
        return len(self._table)

    def resident_vpns(self) -> list:
        """Sorted virtual page numbers currently resident."""
        return sorted(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<AddressSpace {self.name!r} {self.resident_pages}"
            f"/{self.num_pages} resident>"
        )
