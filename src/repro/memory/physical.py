"""Physical memory: a pool of page frames.

The unit of management is the **frame** — a physical page of ``page_size``
bytes.  Frames are either free, pinned (kernel/OS base usage that is never
paged, §5.1.1's "memory unavailable to user applications"), or owned by a
process page table.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import MemoryError_
from ..units import KB

#: The page size of both measured systems (i386): 4 KB.
DEFAULT_PAGE_SIZE = 4 * KB


class Frame:
    """One physical page frame."""

    __slots__ = ("index", "owner", "vpn", "dirty", "referenced", "pinned", "free")

    def __init__(self, index: int) -> None:
        self.index = index
        self.owner: Optional[object] = None  #: the AddressSpace using it
        self.vpn: Optional[int] = None  #: virtual page number within owner
        self.dirty = False
        self.referenced = False
        self.pinned = False
        self.free = False  #: tracks free-list membership in O(1)

    @property
    def in_use(self) -> bool:
        """True when owned by a process or pinned by the OS."""
        return self.owner is not None or self.pinned

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Frame {self.index} owner={self.owner!r} vpn={self.vpn}>"


class FramePool:
    """A fixed pool of physical frames with a free list."""

    def __init__(self, total_bytes: int, page_size: int = DEFAULT_PAGE_SIZE) -> None:
        if page_size <= 0:
            raise MemoryError_("page size must be positive")
        if total_bytes < page_size:
            raise MemoryError_("physical memory smaller than one page")
        self.page_size = page_size
        self.total_frames = total_bytes // page_size
        self.frames: List[Frame] = [Frame(i) for i in range(self.total_frames)]
        self._free: List[Frame] = list(reversed(self.frames))
        for frame in self._free:
            frame.free = True

    @property
    def free_frames(self) -> int:
        """Frames on the free list."""
        return len(self._free)

    @property
    def used_frames(self) -> int:
        """Frames allocated or pinned."""
        return self.total_frames - len(self._free)

    def pin(self, nbytes: int) -> int:
        """Permanently reserve *nbytes* (rounded up to whole frames).

        Models the OS base memory usage (17 MB Linux / 19 MB TSE idle).
        Returns the number of frames pinned.
        """
        npages = -(-nbytes // self.page_size)
        if npages > self.free_frames:
            raise MemoryError_(
                f"cannot pin {npages} frames; only {self.free_frames} free"
            )
        for _ in range(npages):
            frame = self._free.pop()
            frame.free = False
            frame.pinned = True
        return npages

    def allocate(self) -> Optional[Frame]:
        """Take a free frame, or None if physical memory is exhausted."""
        if not self._free:
            return None
        frame = self._free.pop()
        frame.free = False
        frame.dirty = False
        frame.referenced = False
        return frame

    def release(self, frame: Frame) -> None:
        """Return *frame* to the free list."""
        if frame.pinned:
            raise MemoryError_(f"cannot release pinned frame {frame.index}")
        if frame.free:
            raise MemoryError_(f"double free of frame {frame.index}")
        frame.owner = None
        frame.vpn = None
        frame.dirty = False
        frame.referenced = False
        frame.free = True
        self._free.append(frame)
