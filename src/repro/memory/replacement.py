"""Page replacement policies.

Global replacement over all unpinned resident frames, as both measured
systems effectively do under pressure: "certain types of non-interactive,
streaming memory jobs will typically force all other non-active processes to
be paged to disk" (§5.2).  Policies:

* :class:`LRUPolicy` — exact least-recently-used (an ordered map);
* :class:`ClockPolicy` — the classic second-chance approximation both real
  kernels actually shipped;
* :class:`FIFOPolicy` — eviction in arrival order (baseline for tests).

A policy tracks only *evictable* frames; the VM manager notifies it on
insert/access/remove and asks for a victim when the free list runs dry.
"""

from __future__ import annotations

import abc
from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from ..errors import MemoryError_
from .physical import Frame


class ReplacementPolicy(abc.ABC):
    """Interface between the VM manager and an eviction algorithm."""

    name = "abstract"

    @abc.abstractmethod
    def insert(self, frame: Frame) -> None:
        """A page was just faulted into *frame*."""

    @abc.abstractmethod
    def access(self, frame: Frame) -> None:
        """The page in *frame* was touched (hit)."""

    @abc.abstractmethod
    def remove(self, frame: Frame) -> None:
        """*frame* left the evictable set (freed or pinned)."""

    @abc.abstractmethod
    def select_victim(self) -> Frame:
        """Choose and remove the next frame to evict."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of frames currently tracked."""


class LRUPolicy(ReplacementPolicy):
    """Exact least-recently-used eviction."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[int, Frame]" = OrderedDict()

    def insert(self, frame: Frame) -> None:
        if frame.index in self._order:
            raise MemoryError_(f"frame {frame.index} inserted twice")
        self._order[frame.index] = frame

    def access(self, frame: Frame) -> None:
        if frame.index not in self._order:
            raise MemoryError_(f"access to untracked frame {frame.index}")
        self._order.move_to_end(frame.index)

    def remove(self, frame: Frame) -> None:
        self._order.pop(frame.index, None)

    def select_victim(self) -> Frame:
        if not self._order:
            raise MemoryError_("no evictable frames")
        __, frame = self._order.popitem(last=False)
        return frame

    def __len__(self) -> int:
        return len(self._order)


class ClockPolicy(ReplacementPolicy):
    """Second-chance (clock) replacement using frame reference bits."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: Deque[Frame] = deque()
        self._members: Dict[int, Frame] = {}

    def insert(self, frame: Frame) -> None:
        if frame.index in self._members:
            raise MemoryError_(f"frame {frame.index} inserted twice")
        frame.referenced = True
        self._ring.append(frame)
        self._members[frame.index] = frame

    def access(self, frame: Frame) -> None:
        if frame.index not in self._members:
            raise MemoryError_(f"access to untracked frame {frame.index}")
        frame.referenced = True

    def remove(self, frame: Frame) -> None:
        if self._members.pop(frame.index, None) is not None:
            self._ring.remove(frame)

    def select_victim(self) -> Frame:
        if not self._ring:
            raise MemoryError_("no evictable frames")
        while True:
            frame = self._ring.popleft()
            if frame.referenced:
                frame.referenced = False
                self._ring.append(frame)
            else:
                del self._members[frame.index]
                return frame

    def __len__(self) -> int:
        return len(self._ring)


class FIFOPolicy(ReplacementPolicy):
    """Evict in arrival order, ignoring access recency."""

    name = "fifo"

    def __init__(self) -> None:
        self._queue: "OrderedDict[int, Frame]" = OrderedDict()

    def insert(self, frame: Frame) -> None:
        if frame.index in self._queue:
            raise MemoryError_(f"frame {frame.index} inserted twice")
        self._queue[frame.index] = frame

    def access(self, frame: Frame) -> None:
        if frame.index not in self._queue:
            raise MemoryError_(f"access to untracked frame {frame.index}")

    def remove(self, frame: Frame) -> None:
        self._queue.pop(frame.index, None)

    def select_victim(self) -> Frame:
        if not self._queue:
            raise MemoryError_("no evictable frames")
        __, frame = self._queue.popitem(last=False)
        return frame

    def __len__(self) -> int:
        return len(self._queue)


def make_policy(name: str) -> ReplacementPolicy:
    """Construct a policy by name: ``lru``, ``clock``, or ``fifo``."""
    policies = {"lru": LRUPolicy, "clock": ClockPolicy, "fifo": FIFOPolicy}
    try:
        return policies[name]()
    except KeyError:
        raise MemoryError_(
            f"unknown replacement policy {name!r}; expected one of "
            f"{sorted(policies)}"
        ) from None
