"""The virtual-memory manager: faults, eviction, page-in latency.

:class:`VirtualMemory` ties together the frame pool, per-process address
spaces, a replacement policy, and the paging disk.  It is *clock-agnostic*:
``touch`` returns the latency the access cost, and callers (experiments,
the thin-client server composition) account for that time on their own
clocks.  This keeps the module usable both inside the event simulator and
in closed-form experiments.

The latency structure is the paper's (§5.2): while the active data set fits,
access latency is bounded by the memory hierarchy (modelled as a small
constant); when physical memory is exhausted, every miss pays a disk
service time, which dwarfs everything else.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import MemoryError_
from ..obs import current_observation
from .disk import PagingDisk
from .pagetable import AddressSpace
from .physical import Frame, FramePool
from .replacement import ReplacementPolicy


class AccessResult:
    """Outcome of a single page touch."""

    __slots__ = ("latency_ms", "faulted", "evicted", "pages_read")

    def __init__(
        self, latency_ms: float, faulted: bool, evicted: int, pages_read: int
    ) -> None:
        self.latency_ms = latency_ms
        self.faulted = faulted
        self.evicted = evicted  #: frames evicted to satisfy this access
        self.pages_read = pages_read  #: pages transferred from disk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "fault" if self.faulted else "hit"
        return f"<AccessResult {kind} {self.latency_ms:.3f}ms>"


class VirtualMemory:
    """Global-replacement demand paging over a fixed frame pool."""

    #: Latency of a memory-hierarchy hit, in ms.  Negligible next to disk
    #: service times, but non-zero so hit paths consume simulated time.
    HIT_LATENCY_MS = 0.0002

    def __init__(
        self,
        pool: FramePool,
        disk: PagingDisk,
        policy: ReplacementPolicy,
        *,
        read_cluster: int = 1,
        synchronous_writeback: bool = False,
    ) -> None:
        if read_cluster < 1:
            raise MemoryError_("read cluster must be >= 1")
        self.pool = pool
        self.disk = disk
        self.policy = policy
        self.read_cluster = read_cluster
        self.synchronous_writeback = synchronous_writeback
        self.spaces: List[AddressSpace] = []

        # Global accounting.
        self.total_faults = 0
        self.total_hits = 0
        self.total_evictions = 0
        self.total_writebacks = 0
        self._obs = current_observation()
        # Lazily-resolved instrument handles: the hit/fault paths are the
        # hottest loops in the memory experiments and must not pay a
        # registry name lookup per access — but instruments may only be
        # registered on first actual use, so an untouched VM never emits
        # zero-valued metrics (which would change the golden snapshots).
        self._hits_counter = None
        self._faults_counter = None
        self._fault_latency_hist = None
        self._writebacks_counter = None
        self._evictions_counter = None

    # -- process management ----------------------------------------------------

    def create_process(
        self, name: str, size_bytes: int, *, interactive: bool = False
    ) -> AddressSpace:
        """Create an address space of ``ceil(size_bytes / page_size)`` pages."""
        num_pages = -(-size_bytes // self.pool.page_size)
        space = AddressSpace(name, num_pages, interactive=interactive)
        self.spaces.append(space)
        return space

    def destroy_process(self, space: AddressSpace) -> None:
        """Free every resident frame of *space*."""
        for vpn in list(space.resident_vpns()):
            frame = space.lookup(vpn)
            assert frame is not None
            self.policy.remove(frame)
            space.unmap(vpn)
            self.pool.release(frame)
        self.spaces.remove(space)

    # -- the access path -----------------------------------------------------------

    def touch(
        self, space: AddressSpace, vpn: int, *, write: bool = False
    ) -> AccessResult:
        """Access one page; fault it (and its read cluster) in if needed."""
        frame = space.lookup(vpn)
        if frame is not None:
            self.policy.access(frame)
            if write:
                frame.dirty = True
            space.hits += 1
            self.total_hits += 1
            if self._obs is not None:
                self._count_hits(1)
            return AccessResult(self.HIT_LATENCY_MS, False, 0, 0)

        # Page fault: bring in vpn plus up to read_cluster-1 following pages.
        space.faults += 1
        self.total_faults += 1
        if self._obs is not None:
            counter = self._faults_counter
            if counter is None:
                counter = self._faults_counter = self._obs.metrics.counter(
                    "mem.faults"
                )
            counter.value += 1
        latency = 0.0
        evicted = 0
        to_read = [vpn]
        for next_vpn in range(vpn + 1, vpn + self.read_cluster):
            if next_vpn < space.num_pages and space.lookup(next_vpn) is None:
                to_read.append(next_vpn)
            else:
                break

        mapped = 0
        for fault_vpn in to_read:
            frame, evict_latency, evict_count = self._obtain_frame(space)
            if frame is None:
                if mapped:
                    break  # cluster truncated by memory pressure
                raise MemoryError_(
                    "out of memory: no free frames and no evictable pages"
                )
            latency += evict_latency
            evicted += evict_count
            space.map(fault_vpn, frame)
            if write and fault_vpn == vpn:
                frame.dirty = True
            self.policy.insert(frame)
            mapped += 1

        latency += self.disk.read_ms(mapped)
        if self._obs is not None:
            hist = self._fault_latency_hist
            if hist is None:
                hist = self._fault_latency_hist = self._obs.metrics.histogram(
                    "mem.fault_latency_ms"
                )
            hist.observe(latency)
        return AccessResult(latency, True, evicted, mapped)

    def touch_sequential(
        self, space: AddressSpace, start_vpn: int, npages: int, *, write: bool = False
    ) -> float:
        """Touch ``[start_vpn, start_vpn + npages)`` in order; total latency.

        Batch-aware: runs of hits are accounted inline — no per-page
        :class:`AccessResult` allocation, one counter update per run —
        and only faults take the full :meth:`touch` path.  Totals
        (``space.hits``, ``total_hits``, the ``mem.hits`` counter) end
        identical to *npages* individual :meth:`touch` calls.
        """
        total = 0.0
        hit_run = 0
        hit_latency = self.HIT_LATENCY_MS
        lookup = space.lookup
        access = self.policy.access
        num_pages = space.num_pages
        for vpn in range(start_vpn, start_vpn + npages):
            v = vpn % num_pages
            frame = lookup(v)
            if frame is not None:
                access(frame)
                if write:
                    frame.dirty = True
                hit_run += 1
                total += hit_latency
            else:
                total += self.touch(space, v, write=write).latency_ms
        if hit_run:
            space.hits += hit_run
            self.total_hits += hit_run
            if self._obs is not None:
                self._count_hits(hit_run)
        return total

    def _count_hits(self, n: int) -> None:
        counter = self._hits_counter
        if counter is None:
            counter = self._hits_counter = self._obs.metrics.counter("mem.hits")
        counter.value += n

    def resident_fraction(self, space: AddressSpace) -> float:
        """Fraction of *space*'s pages currently in physical memory."""
        return space.resident_pages / space.num_pages

    # -- internals --------------------------------------------------------------

    def _obtain_frame(self, requester: AddressSpace):
        """A free frame, evicting a victim if necessary.

        Returns ``(frame_or_none, writeback_latency_ms, evicted_count)``.
        Subclasses (throttling) override :meth:`_select_victim`.
        """
        frame = self.pool.allocate()
        if frame is not None:
            return frame, 0.0, 0
        victim = self._select_victim(requester)
        if victim is None:
            return None, 0.0, 0
        latency = self._evict(victim)
        frame = self.pool.allocate()
        assert frame is not None
        return frame, latency, 1

    def _select_victim(self, requester: AddressSpace) -> Optional[Frame]:
        if len(self.policy) == 0:
            return None
        return self.policy.select_victim()

    def _evict(self, victim: Frame) -> float:
        """Unmap and free *victim*; returns synchronous write-back latency."""
        owner = victim.owner
        assert isinstance(owner, AddressSpace)
        assert victim.vpn is not None
        latency = 0.0
        if victim.dirty:
            self.total_writebacks += 1
            write_ms = self.disk.write_ms(1)
            if self.synchronous_writeback:
                latency = write_ms
            if self._obs is not None:
                counter = self._writebacks_counter
                if counter is None:
                    counter = self._writebacks_counter = (
                        self._obs.metrics.counter("mem.writebacks")
                    )
                counter.value += 1
        owner.unmap(victim.vpn)
        self.pool.release(victim)
        self.total_evictions += 1
        if self._obs is not None:
            counter = self._evictions_counter
            if counter is None:
                counter = self._evictions_counter = self._obs.metrics.counter(
                    "mem.evictions"
                )
            counter.value += 1
        return latency
