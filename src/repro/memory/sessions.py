"""Per-login session memory profiles (the paper's §5.1.1 tables).

Compulsory memory load has two components:

1. the OS base usage with no sessions — **17 MB for Linux, 19 MB for TSE**;
2. the private, per-user memory of a *minimal login* — the process tables
   the paper reports (private consumption only, excluding amortized shared
   code pages):

   ========================  =========  =============================
   Linux/X                   752 KB     in.rshd + xterm + bash
   TSE (typical, Explorer)   3,244 KB   explorer/csrss/loadwc/nddeagnt/winlogin
   TSE (light, DOS prompt)   2,100 KB   command.com instead of explorer
   ========================  =========  =============================

These tables feed the per-session address-space sizes in the memory
experiments and the capacity planner's memory dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import MemoryError_
from ..units import KB, MB, kb, mb


@dataclass(frozen=True)
class ProcessMemory:
    """Private, per-user memory of one login process."""

    name: str
    private_kb: int

    @property
    def private_bytes(self) -> int:
        """Private consumption in bytes."""
        return self.private_kb * KB


@dataclass(frozen=True)
class SessionProfile:
    """The process set of one minimal login."""

    os_name: str
    variant: str
    processes: Tuple[ProcessMemory, ...]

    @property
    def total_kb(self) -> int:
        """Total private per-login memory, in KB (the paper's unit)."""
        return sum(p.private_kb for p in self.processes)

    @property
    def total_bytes(self) -> int:
        """Total private per-login memory, in bytes."""
        return self.total_kb * KB


#: OS base memory with no sessions (§5.1.1): "memory load in this state was
#: roughly comparable between the two systems, 17MB for Linux and 19MB for TSE."
IDLE_MEMORY_BYTES: Dict[str, int] = {
    "linux": mb(17),
    "nt_tse": mb(19),
}

LINUX_SESSION = SessionProfile(
    "linux",
    "typical",
    (
        ProcessMemory("in.rshd", 204),
        ProcessMemory("xterm", 372),
        ProcessMemory("bash", 176),
    ),
)

TSE_SESSION_TYPICAL = SessionProfile(
    "nt_tse",
    "typical",
    (
        ProcessMemory("explorer.exe", 1368),
        ProcessMemory("csrss.exe", 452),
        ProcessMemory("loadwc.exe", 424),
        ProcessMemory("nddeagnt.exe", 300),
        ProcessMemory("winlogin.exe", 700),
    ),
)

TSE_SESSION_LIGHT = SessionProfile(
    "nt_tse",
    "light",
    (
        ProcessMemory("command.com", 224),
        ProcessMemory("csrss.exe", 452),
        ProcessMemory("loadwc.exe", 424),
        ProcessMemory("nddeagnt.exe", 300),
        ProcessMemory("winlogin.exe", 700),
    ),
)

_PROFILES: Dict[Tuple[str, str], SessionProfile] = {
    ("linux", "typical"): LINUX_SESSION,
    ("nt_tse", "typical"): TSE_SESSION_TYPICAL,
    ("nt_tse", "light"): TSE_SESSION_LIGHT,
}


def session_profile(os_name: str, variant: str = "typical") -> SessionProfile:
    """The minimal-login process set for *os_name* (and TSE *variant*)."""
    try:
        return _PROFILES[(os_name, variant)]
    except KeyError:
        raise MemoryError_(
            f"no session profile for os={os_name!r} variant={variant!r}"
        ) from None


def idle_memory_bytes(os_name: str) -> int:
    """OS base memory usage with no user sessions."""
    try:
        return IDLE_MEMORY_BYTES[os_name]
    except KeyError:
        raise MemoryError_(f"no idle memory figure for os={os_name!r}") from None


def sessions_that_fit(
    os_name: str,
    physical_bytes: int,
    *,
    variant: str = "typical",
    per_user_dynamic_bytes: int = 0,
) -> int:
    """How many logins fit in *physical_bytes* before paging must begin.

    Counts the OS base usage once, then divides the remainder by the
    per-session compulsory load plus any assumed per-user dynamic working
    set.  This is the memory dimension of capacity planning (§5.1).
    """
    base = idle_memory_bytes(os_name)
    if physical_bytes <= base:
        return 0
    per_user = session_profile(os_name, variant).total_bytes + per_user_dynamic_bytes
    if per_user <= 0:
        raise MemoryError_("per-user memory must be positive")
    return (physical_bytes - base) // per_user
