"""The paper's memory-latency experiment (§5.2's table).

Procedure (paper): open a simple text editor remotely (Notepad on TSE,
vim on Linux); start a process that sequentially touches each byte of a
region exceeding available physical memory and let it run 30 seconds —
paging the editor out; then input a single keystroke and measure the time
until the server responds with a screen update.  Ten runs per system,
reporting min/avg/max for page demand below and at-or-above 100 % of
physical memory.

Our reproduction runs the same procedure against the
:class:`~repro.memory.vm.VirtualMemory` substrate.  The editor session is
warmed, a non-interactive hog streams through an address space sized
relative to evictable memory (its *page demand*), and the keystroke then
touches the editor's **response set** — the pages the echo path actually
needs.  The response-set size is sampled per run (lognormal): which parts
of an application and its session services a redraw touches varies run to
run, and this is the dominant source of the wide min–max spread the paper
reports.

Why TSE pays ~3.4× Linux's latency: its keystroke path spans a much larger
private session working set — Notepad plus ``csrss.exe``/``winlogin.exe``
and the per-session kernel state TSE makes pageable — mirroring the 3,244 KB
vs 752 KB compulsory per-login memory of §5.1.1.  The response-set means
below are calibrated to that ratio.

Responses are reported as ``max(measured, 50 ms)``: the paper's methodology
observes screen updates paced at the 50 ms key-repeat interval, so anything
faster reads as 50 ms (the "< 100 %" rows of its table).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..errors import MemoryError_
from ..sim.rng import RngRegistry
from ..sim.stats import Summary
from ..units import mb
from .disk import PagingDisk
from .physical import FramePool
from .replacement import make_policy
from .sessions import idle_memory_bytes
from .throttle import ThrottledVirtualMemory
from .vm import VirtualMemory

#: Screen updates are paced at the 50 ms key-repeat interval (§4.2.2).
BASELINE_RESPONSE_MS = 50.0

#: CPU cost of the echo path itself, negligible next to paging.
ECHO_CPU_MS = 2.0


@dataclass(frozen=True)
class MemoryWorkloadProfile:
    """Per-OS parameters of the page-demand experiment."""

    os_name: str
    respond_pages_mean: float  #: mean pages the keystroke path touches
    respond_sigma: float  #: lognormal sigma of the response-set size
    respond_pages_min: int  #: floor on the sampled response set
    editor_pages: int  #: total editor session address-space size
    read_cluster: int = 1  #: page-in clustering


#: Calibrated so avg latency lands near the paper's 1,170 ms (Linux) and
#: 4,026 ms (TSE) with the default disk model (~13 ms per page-in).
MEMORY_PROFILES: Dict[str, MemoryWorkloadProfile] = {
    "linux": MemoryWorkloadProfile(
        os_name="linux",
        respond_pages_mean=90.0,
        respond_sigma=0.55,
        respond_pages_min=22,
        editor_pages=420,
    ),
    "nt_tse": MemoryWorkloadProfile(
        os_name="nt_tse",
        respond_pages_mean=245.0,
        respond_sigma=0.55,
        respond_pages_min=140,
        editor_pages=1400,
    ),
}


@dataclass
class MemoryLatencyResult:
    """Ten-run outcome for one (OS, page-demand) cell of the table."""

    os_name: str
    page_demand: float
    latencies_ms: List[float]
    throttled: bool = False

    @property
    def summary(self) -> Summary:
        """min/avg/max over the ten runs — one table row."""
        return Summary.of(self.latencies_ms)


def memory_profile(os_name: str) -> MemoryWorkloadProfile:
    """The per-OS experiment parameters."""
    try:
        return MEMORY_PROFILES[os_name]
    except KeyError:
        raise MemoryError_(
            f"no memory workload profile for {os_name!r}; expected one of "
            f"{sorted(MEMORY_PROFILES)}"
        ) from None


def _sample_respond_pages(profile: MemoryWorkloadProfile, rng) -> int:
    mu = math.log(profile.respond_pages_mean) - profile.respond_sigma**2 / 2.0
    pages = int(round(rng.lognormvariate(mu, profile.respond_sigma)))
    return max(profile.respond_pages_min, min(profile.editor_pages, pages))


def run_memory_latency_experiment(
    os_name: str,
    page_demand: float,
    *,
    runs: int = 10,
    seed: int = 0,
    physical_bytes: int = mb(64),
    policy: str = "lru",
    throttled: bool = False,
    hog_disk_contention: float = 0.3,
) -> MemoryLatencyResult:
    """One cell of the §5.2 table.

    ``page_demand`` is the hog's address-space size as a fraction of the
    memory evictable after the OS base and editor session are resident:
    the paper's "< 100 %" column corresponds to e.g. ``0.5``, the
    "≥ 100 %" column to e.g. ``1.2``.  Set ``throttled=True`` for the
    Evans et al. ablation.

    ``hog_disk_contention`` is the probability that an editor page-in
    queues behind one of the still-running hog's own disk requests ("we
    then started and **let run**" — the streamer keeps faulting during the
    measurement), paying one extra disk service.  It both raises the mean
    and widens the run-to-run spread, as the paper's min/max columns show.
    """
    if page_demand < 0:
        raise MemoryError_("page demand must be non-negative")
    profile = memory_profile(os_name)
    rngs = RngRegistry(seed)
    respond_rng = rngs.stream(f"mem:respond:{os_name}:{page_demand}")
    latencies: List[float] = []

    for run in range(runs):
        disk = PagingDisk(rngs.stream(f"mem:disk:{os_name}:{page_demand}:{run}"))
        pool = FramePool(physical_bytes)
        vm_cls = ThrottledVirtualMemory if throttled else VirtualMemory
        vm = vm_cls(
            pool, disk, make_policy(policy), read_cluster=profile.read_cluster
        )

        pool.pin(idle_memory_bytes(os_name))
        editor = vm.create_process(
            "editor-session",
            profile.editor_pages * pool.page_size,
            interactive=True,
        )
        # Warm the session: everything resident, then the user stops typing
        # ("think time") — the editor pages become the LRU-coldest.
        vm.touch_sequential(editor, 0, profile.editor_pages)

        # The streaming hog: sized relative to what it can steal.
        evictable = pool.free_frames + editor.resident_pages
        hog_pages = max(1, int(evictable * page_demand))
        hog = vm.create_process(
            "memhog", hog_pages * pool.page_size, interactive=False
        )
        vm.touch_sequential(hog, 0, hog_pages, write=True)

        # The keystroke: the echo path touches the sampled response set
        # while the hog keeps streaming and contending for the disk.
        contention_rng = rngs.stream(
            f"mem:contention:{os_name}:{page_demand}:{run}"
        )
        respond_pages = _sample_respond_pages(profile, respond_rng)
        latency = ECHO_CPU_MS
        for vpn in range(respond_pages):
            result = vm.touch(editor, vpn % editor.num_pages)
            latency += result.latency_ms
            if (
                result.faulted
                and hog_disk_contention > 0
                and contention_rng.random() < hog_disk_contention
            ):
                latency += disk.read_ms(1)  # queued behind a hog request
        latencies.append(max(latency, BASELINE_RESPONSE_MS))

    return MemoryLatencyResult(
        os_name=os_name,
        page_demand=page_demand,
        latencies_ms=latencies,
        throttled=throttled,
    )
