"""The paging disk latency model.

A late-1990s IDE/SCSI disk: a seek, half a rotation on average, then media
transfer.  Page-ins of consecutive pages in one request pay the positioning
cost once (read clustering).  Service times are sampled from named RNG
streams so runs are deterministic per seed.

Defaults produce ~13 ms per single-page read — a 7200 RPM-class disk — which
the memory-latency experiment's calibration (§5.2 table) builds on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import MemoryError_


@dataclass(frozen=True)
class DiskParameters:
    """Mechanical characteristics of the paging device."""

    seek_lo_ms: float = 4.0  #: minimum seek
    seek_hi_ms: float = 12.0  #: maximum (full-stroke-ish) seek
    rotation_ms: float = 8.33  #: full revolution (7200 RPM)
    transfer_ms_per_page: float = 0.85  #: 4 KB at ~5 MB/s media rate

    def mean_service_ms(self, pages: int = 1) -> float:
        """Expected service time for one request of *pages* pages."""
        seek = (self.seek_lo_ms + self.seek_hi_ms) / 2.0
        rotation = self.rotation_ms / 2.0
        return seek + rotation + self.transfer_ms_per_page * pages


class PagingDisk:
    """Samples service times for page-in / page-out requests."""

    def __init__(
        self,
        rng: random.Random,
        params: DiskParameters = DiskParameters(),
    ) -> None:
        self.rng = rng
        self.params = params
        self.reads = 0
        self.writes = 0
        self.pages_read = 0
        self.pages_written = 0
        self.busy_ms = 0.0

    def _positioning_ms(self) -> float:
        seek = self.rng.uniform(self.params.seek_lo_ms, self.params.seek_hi_ms)
        rotation = self.rng.uniform(0.0, self.params.rotation_ms)
        return seek + rotation

    def read_ms(self, pages: int = 1) -> float:
        """Service time for one page-in request of *pages* contiguous pages."""
        if pages <= 0:
            raise MemoryError_("read of zero pages")
        service = self._positioning_ms() + self.params.transfer_ms_per_page * pages
        self.reads += 1
        self.pages_read += pages
        self.busy_ms += service
        return service

    def write_ms(self, pages: int = 1) -> float:
        """Service time for one page-out request (dirty write-back)."""
        if pages <= 0:
            raise MemoryError_("write of zero pages")
        service = self._positioning_ms() + self.params.transfer_ms_per_page * pages
        self.writes += 1
        self.pages_written += pages
        self.busy_ms += service
        return service
