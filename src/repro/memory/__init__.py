"""Memory substrate: frames, page tables, replacement, paging, sessions.

Implements the paper's §5: compulsory per-login memory load (the §5.1.1
tables), demand paging with global replacement, the page-demand latency
pathology (§5.2's table), and Evans et al.'s throttling remedy.
"""

from .disk import DiskParameters, PagingDisk
from .experiment import (
    BASELINE_RESPONSE_MS,
    MEMORY_PROFILES,
    MemoryLatencyResult,
    MemoryWorkloadProfile,
    memory_profile,
    run_memory_latency_experiment,
)
from .pagetable import AddressSpace
from .physical import DEFAULT_PAGE_SIZE, Frame, FramePool
from .replacement import (
    ClockPolicy,
    FIFOPolicy,
    LRUPolicy,
    ReplacementPolicy,
    make_policy,
)
from .sessions import (
    IDLE_MEMORY_BYTES,
    LINUX_SESSION,
    TSE_SESSION_LIGHT,
    TSE_SESSION_TYPICAL,
    ProcessMemory,
    SessionProfile,
    idle_memory_bytes,
    session_profile,
    sessions_that_fit,
)
from .throttle import ThrottledVirtualMemory
from .vm import AccessResult, VirtualMemory

__all__ = [
    "AccessResult",
    "AddressSpace",
    "BASELINE_RESPONSE_MS",
    "ClockPolicy",
    "DEFAULT_PAGE_SIZE",
    "DiskParameters",
    "FIFOPolicy",
    "Frame",
    "FramePool",
    "IDLE_MEMORY_BYTES",
    "LINUX_SESSION",
    "LRUPolicy",
    "MEMORY_PROFILES",
    "MemoryLatencyResult",
    "MemoryWorkloadProfile",
    "PagingDisk",
    "ProcessMemory",
    "ReplacementPolicy",
    "SessionProfile",
    "ThrottledVirtualMemory",
    "TSE_SESSION_LIGHT",
    "TSE_SESSION_TYPICAL",
    "VirtualMemory",
    "idle_memory_bytes",
    "make_policy",
    "memory_profile",
    "run_memory_latency_experiment",
    "session_profile",
    "sessions_that_fit",
]
