"""Side-by-side comparison of simulated points and closed-form predictions.

The harness the oracle suite and the ``analytic_*`` experiments share: each
``compare_*`` function runs one :mod:`~repro.analytic.workbench` simulation
point, computes the matching prediction from
:mod:`~repro.analytic.queueing` / :mod:`~repro.analytic.mva`, and returns
:class:`ComparisonRow` pairs carrying the relative error.

The mapping from simulation parameters to model parameters is the entire
content of a cross-validation, so it is explicit here:

* **Open queue** — arrival rate and service moments pass straight through
  (exponential service ⇒ M/M/1, deterministic ⇒ M/D/1).
* **Loaded link** — the probe's one-way delay decomposes as
  ``Wq + S_probe + propagation``, where ``Wq`` is the P–K wait of the
  *mixture* of 1500-byte load frames and 64-byte probes (both flows are
  Poisson, so the superposition is too, and PASTA makes the probes' mean
  an estimate of the time-average).
* **Closed loop** — N sessions with exponential think Z and one shared
  exponential FIFO station of demand D is exactly the single-station MVA
  network; X(N) and R(N) compare directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..units import mbps_to_bytes_per_ms
from .mva import solve_mva
from .queueing import (
    mg1_prediction,
    mm1_prediction,
    mm1_sojourn_quantile,
    mm1_wait_quantile,
    service_mix,
)
from .workbench import (
    LOAD_FRAME_BYTES,
    PROBE_BYTES,
    ClosedLoopObservation,
    LinkProbeObservation,
    QueueObservation,
    simulate_closed_loop,
    simulate_link_probe,
    simulate_open_queue,
)


@dataclass(frozen=True)
class ComparisonRow:
    """One predicted-vs-simulated observable.

    ``relative_error`` is ``|simulated - predicted| / predicted`` —
    predictions here are never zero (stable queues with positive service
    times have positive means).
    """

    metric: str
    predicted: float
    simulated: float

    @property
    def relative_error(self) -> float:
        """Fractional disagreement, relative to the prediction."""
        return abs(self.simulated - self.predicted) / abs(self.predicted)


def compare_open_queue(
    arrival_rate: float,
    mean_service_ms: float,
    *,
    service: str = "exponential",
    duration_ms: float = 60_000.0,
    seed: int = 0,
) -> Tuple[List[ComparisonRow], QueueObservation]:
    """M/M/1 (or M/D/1) vs a kernel-timer simulation of the same queue.

    Returns rows for the mean wait, mean sojourn, and the mean system
    population seen by arrivals (vs the closed form's L), plus the raw
    observation.
    """
    if service == "exponential":
        predicted = mm1_prediction(arrival_rate, mean_service_ms)
    else:
        predicted = mg1_prediction(
            arrival_rate, mean_service_ms, mean_service_ms**2
        )
    observed = simulate_open_queue(
        arrival_rate,
        mean_service_ms,
        service=service,
        duration_ms=duration_ms,
        seed=seed,
    )
    rows = [
        ComparisonRow("wait_ms", predicted.wait_ms, observed.mean_wait_ms),
        ComparisonRow(
            "sojourn_ms", predicted.response_ms, observed.mean_sojourn_ms
        ),
        ComparisonRow(
            "in_system", predicted.in_system, observed.mean_seen_in_system
        ),
    ]
    return rows, observed


def compare_open_queue_quantiles(
    arrival_rate: float,
    mean_service_ms: float,
    *,
    levels: Tuple[float, ...] = (0.9, 0.99),
    duration_ms: float = 60_000.0,
    seed: int = 0,
) -> Tuple[List[ComparisonRow], QueueObservation]:
    """M/M/1 tail quantiles vs the simulated queue's sample percentiles.

    The sojourn rows use the exact exponential sojourn law
    (:func:`~repro.analytic.queueing.mm1_sojourn_quantile`); the wait rows
    use the atom-plus-exponential wait law.  Only exponential service is
    meaningful here — the closed forms are M/M/1-specific.  This is the
    tail oracle: the mean-based comparisons cannot tell a thin tail from a
    fat one, and these rows can.
    """
    observed = simulate_open_queue(
        arrival_rate,
        mean_service_ms,
        service="exponential",
        duration_ms=duration_ms,
        seed=seed,
    )
    simulated = {
        0.9: (observed.wait_p90_ms, observed.sojourn_p90_ms),
        0.99: (observed.wait_p99_ms, observed.sojourn_p99_ms),
    }
    rows: List[ComparisonRow] = []
    for p in levels:
        if p not in simulated:
            raise ValueError(f"no simulated percentile recorded for p={p}")
        wait_sim, sojourn_sim = simulated[p]
        label = f"p{p * 100:g}"
        rows.append(
            ComparisonRow(
                f"sojourn_{label}_ms",
                mm1_sojourn_quantile(arrival_rate, mean_service_ms, p),
                sojourn_sim,
            )
        )
        wait_pred = mm1_wait_quantile(arrival_rate, mean_service_ms, p)
        if wait_pred > 0.0:
            rows.append(
                ComparisonRow(f"wait_{label}_ms", wait_pred, wait_sim)
            )
    return rows, observed


def predict_link_probe(
    rho: float,
    *,
    bandwidth_mbps: float = 10.0,
    probe_interval_ms: float = 5.0,
    propagation_ms: float = 0.05,
) -> Tuple[float, float]:
    """(predicted one-way probe delay ms, predicted packets in system).

    Builds the load+probe service mixture, applies P–K, and adds the
    probe's own transmission and the propagation delay — the analytic
    side of :func:`~repro.analytic.workbench.simulate_link_probe`.
    """
    bytes_per_ms = mbps_to_bytes_per_ms(bandwidth_mbps)
    load_rate = rho * bytes_per_ms / LOAD_FRAME_BYTES
    probe_rate = 1.0 / probe_interval_ms
    mix = service_mix(
        [
            (load_rate, LOAD_FRAME_BYTES / bytes_per_ms),
            (probe_rate, PROBE_BYTES / bytes_per_ms),
        ]
    )
    prediction = mg1_prediction(mix.total_rate, mix.mean_ms, mix.second_moment)
    probe_service = PROBE_BYTES / bytes_per_ms
    return (
        prediction.wait_ms + probe_service + propagation_ms,
        prediction.in_system,
    )


def compare_link_probe(
    rho: float,
    *,
    bandwidth_mbps: float = 10.0,
    probe_interval_ms: float = 5.0,
    duration_ms: float = 30_000.0,
    seed: int = 0,
) -> Tuple[List[ComparisonRow], LinkProbeObservation]:
    """M/G/1 mixture vs the simulated shared link at offered load *rho*.

    Rows compare the probes' one-way delay and the packets-in-system each
    probe saw at send time against the P–K prediction.
    """
    delay, in_system = predict_link_probe(
        rho,
        bandwidth_mbps=bandwidth_mbps,
        probe_interval_ms=probe_interval_ms,
    )
    observed = simulate_link_probe(
        rho,
        bandwidth_mbps=bandwidth_mbps,
        probe_interval_ms=probe_interval_ms,
        duration_ms=duration_ms,
        seed=seed,
    )
    rows = [
        ComparisonRow("delay_ms", delay, observed.mean_delay_ms),
        ComparisonRow("in_system", in_system, observed.mean_seen_in_system),
    ]
    return rows, observed


def compare_closed_loop(
    sessions: int,
    *,
    think_ms: float = 200.0,
    service_ms: float = 10.0,
    duration_ms: float = 60_000.0,
    seed: int = 0,
) -> Tuple[List[ComparisonRow], ClosedLoopObservation]:
    """Exact MVA vs the simulated N-session closed loop.

    Rows compare cycle throughput X(N) (per ms) and mean response R(N).
    """
    solution = solve_mva(sessions, think_ms, [service_ms])
    observed = simulate_closed_loop(
        sessions,
        think_ms=think_ms,
        service_ms=service_ms,
        duration_ms=duration_ms,
        seed=seed,
    )
    rows = [
        ComparisonRow("throughput", solution.throughput, observed.throughput),
        ComparisonRow(
            "response_ms", solution.response_ms, observed.mean_response_ms
        ),
    ]
    return rows, observed
