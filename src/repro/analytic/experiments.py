"""Registered analytic experiments: predicted-vs-simulated overlay curves.

Two experiments put the closed-form models next to live simulation through
the standard executor pipeline (``--jobs``, result cache, tracing, CSV all
compose), the way Gunther's *X-Files* overlays queueing models on measured
X11 latency:

``analytic_link``
    The Figures 8–9 medium as an M/G/1 queue: one-way 64-byte probe delay
    through the shared 10 Mbps link across offered utilization
    ρ ∈ [0.1, 0.9], simulated vs Pollaczek–Khinchine.  Light traffic
    agrees within a few percent; the high-ρ rows show the widening
    sampling error a finite window pays near saturation.

``analytic_closed``
    The fleet's closed-loop shape as a closed network: N think/interact
    sessions sharing one server, simulated vs exact Mean Value Analysis
    throughput X(N) and response R(N) across session counts straddling
    the saturation knee N* = (Z + D)/D.

Both sweeps are pure functions of (parameters, seed): artifacts are
byte-identical across serial, ``--jobs N``, and warm-cache runs, on both
kernels and both recorders — which is what makes them a standing oracle
rather than a demo.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from ..core.registry import experiment
from ..core.report import format_overlay, write_csv
from ..sim.rng import derive_seed

#: Offered-utilization grid swept by ``analytic_link``.
LINK_RHO_LEVELS = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]

#: Simulated window per link point (ms); ~6k probe samples per point.
LINK_DURATION_MS = 30_000.0

#: Session counts swept by ``analytic_closed`` — the knee sits at
#: N* = (Z + D)/D = 21 for the think/service pair below.
CLOSED_SESSION_COUNTS = [1, 2, 4, 8, 16, 24, 32]

#: Closed-loop think and service means (ms): a 5 Hz-thinking user against
#: a 10 ms interaction, the fleet experiments' order of magnitude.
CLOSED_THINK_MS = 200.0
CLOSED_SERVICE_MS = 10.0

#: Simulated window per closed point (ms); long enough that the N=1
#: point's ~1400 cycles keep sampling error well inside the oracle band.
CLOSED_DURATION_MS = 300_000.0


def _analytic_link_point(
    rho: float, *, seed: int
) -> Tuple[float, float, float, float, float, int]:
    """One ρ cell: (pred delay, sim delay, pred L, sim L, utilization, n)."""
    from .validate import compare_link_probe

    rows, observed = compare_link_probe(
        rho,
        duration_ms=LINK_DURATION_MS,
        seed=derive_seed(seed, f"analytic_link:{rho}"),
    )
    delay, in_system = rows
    return (
        delay.predicted,
        delay.simulated,
        in_system.predicted,
        in_system.simulated,
        observed.utilization,
        observed.samples,
    )


def _analytic_closed_point(
    sessions: int, *, seed: int
) -> Tuple[float, float, float, float, int]:
    """One N cell: (pred X, sim X, pred R, sim R, completions)."""
    from .validate import compare_closed_loop

    rows, observed = compare_closed_loop(
        sessions,
        think_ms=CLOSED_THINK_MS,
        service_ms=CLOSED_SERVICE_MS,
        duration_ms=CLOSED_DURATION_MS,
        seed=derive_seed(seed, f"analytic_closed:{sessions}"),
    )
    throughput, response = rows
    return (
        throughput.predicted,
        throughput.simulated,
        response.predicted,
        response.simulated,
        observed.completions,
    )


def _analytic_link(ctx) -> None:
    """Overlay P–K predictions on the simulated link across utilization."""
    points = ctx.executor.map(
        "analytic_link" + ctx.fault_suffix,
        partial(_analytic_link_point, seed=ctx.seed),
        list(LINK_RHO_LEVELS),
        seed=ctx.seed,
    )
    xs = [f"{rho:.1f}" for rho in LINK_RHO_LEVELS]
    ctx.out.write(
        format_overlay(
            "rho",
            xs,
            [
                (
                    "delay_ms",
                    [p[0] for p in points],
                    [p[1] for p in points],
                ),
                (
                    "in_system",
                    [p[2] for p in points],
                    [p[3] for p in points],
                ),
            ],
            title=(
                "analytic_link: one-way 64B probe delay on the shared "
                "10 Mbps link — M/G/1 (P-K) vs simulation"
            ),
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/analytic_link.csv",
            [
                "rho",
                "predicted_delay_ms",
                "simulated_delay_ms",
                "predicted_in_system",
                "simulated_in_system",
                "utilization",
                "samples",
            ],
            [
                (rho, *point)
                for rho, point in zip(LINK_RHO_LEVELS, points)
            ],
        )


def _analytic_closed(ctx) -> None:
    """Overlay exact MVA on the simulated closed loop across populations."""
    points = ctx.executor.map(
        "analytic_closed" + ctx.fault_suffix,
        partial(_analytic_closed_point, seed=ctx.seed),
        list(CLOSED_SESSION_COUNTS),
        seed=ctx.seed,
    )
    ctx.out.write(
        format_overlay(
            "sessions",
            CLOSED_SESSION_COUNTS,
            [
                (
                    "X (1/ms)",
                    [p[0] for p in points],
                    [p[1] for p in points],
                ),
                (
                    "R (ms)",
                    [p[2] for p in points],
                    [p[3] for p in points],
                ),
            ],
            title=(
                "analytic_closed: N think/interact sessions on one server "
                f"(Z={CLOSED_THINK_MS:.0f} ms, D={CLOSED_SERVICE_MS:.0f} ms, "
                f"knee N*={(CLOSED_THINK_MS + CLOSED_SERVICE_MS) / CLOSED_SERVICE_MS:.0f}) "
                "— exact MVA vs simulation"
            ),
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/analytic_closed.csv",
            [
                "sessions",
                "predicted_throughput",
                "simulated_throughput",
                "predicted_response_ms",
                "simulated_response_ms",
                "completions",
            ],
            [
                (sessions, *point)
                for sessions, point in zip(CLOSED_SESSION_COUNTS, points)
            ],
        )


_REGISTERED = False


def _register() -> None:
    """Register this module's experiments; idempotent.

    Driven by ``repro.cli`` at this module's canonical position in the
    registration sequence (see ``repro.fleet.experiments._register`` for
    why import-time decorators would make registry order depend on which
    module a process imports first).
    """
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True
    experiment(
        "analytic_link",
        title="M/G/1 vs simulated shared-link probe delay across rho",
        group="analytic",
    )(_analytic_link)
    experiment(
        "analytic_closed",
        title="Exact MVA vs simulated closed-loop sessions across N",
        group="analytic",
    )(_analytic_closed)


# Importing any experiments module alone must still populate the whole
# registry in canonical order: pull in the CLI, which calls every
# module's ``_register`` in sequence.
from .. import cli as _cli  # noqa: E402,F401
