"""Closed-form open-queue models: M/M/1 and M/G/1 (Pollaczek–Khinchine).

The simulated shared link (:mod:`repro.net.link`) is a single-server FIFO
queue; when the offered traffic is Poisson, queueing theory predicts its
waiting time and queue length exactly.  Gunther's *The X-Files* analyzes
X11 thin-client traffic with these same models — they are the external
oracle the differential-equivalence suites (which only prove kernel A ==
kernel B) cannot provide.

Conventions match the simulator: time in **milliseconds**, rates in
events per millisecond.  All formulas assume a stable queue (utilization
ρ = λ·E[S] < 1); saturated parameters raise :class:`~repro.errors.AnalyticError`
rather than returning infinities, because a caller comparing against a
finite simulation window always wants the stable regime.

The three classic results, in the notation used throughout:

* utilization         ``rho = lam * mean_service``
* M/G/1 waiting time  ``Wq = lam * E[S^2] / (2 * (1 - rho))``  (P–K)
* Little's law        ``Lq = lam * Wq``,  ``L = lam * W``

M/M/1 is the ``E[S^2] = 2·E[S]^2`` special case (exponential service,
squared coefficient of variation 1); M/D/1 is ``E[S^2] = E[S]^2`` (SCV 0)
and waits exactly half as long.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import AnalyticError


@dataclass(frozen=True)
class OpenQueuePrediction:
    """Steady-state averages of one stable single-server queue.

    All times are milliseconds; lengths are customers (packets).  ``wait_ms``
    is time in queue *excluding* service (Wq); ``response_ms`` is the full
    sojourn (W = Wq + E[S]).
    """

    arrival_rate: float  #: λ, customers per ms
    mean_service_ms: float  #: E[S]
    utilization: float  #: ρ = λ·E[S]
    wait_ms: float  #: Wq, mean time in queue
    response_ms: float  #: W = Wq + E[S], mean sojourn
    queue_length: float  #: Lq = λ·Wq, mean customers waiting
    in_system: float  #: L = λ·W, mean customers in system


def mg1_prediction(
    arrival_rate: float,
    mean_service_ms: float,
    second_moment_service: float,
) -> OpenQueuePrediction:
    """Pollaczek–Khinchine prediction for an M/G/1 queue.

    *arrival_rate* is λ in customers/ms, *mean_service_ms* is E[S], and
    *second_moment_service* is E[S²] in ms² — the full generality of P–K,
    so mixed packet sizes (load frames + probe packets) are handled by
    passing the mixture's moments.
    """
    if arrival_rate < 0:
        raise AnalyticError("arrival rate cannot be negative")
    if mean_service_ms <= 0:
        raise AnalyticError("mean service time must be positive")
    if second_moment_service < mean_service_ms**2:
        raise AnalyticError(
            "E[S^2] below E[S]^2 is not a distribution "
            f"(got {second_moment_service} < {mean_service_ms ** 2})"
        )
    rho = arrival_rate * mean_service_ms
    if rho >= 1.0:
        raise AnalyticError(
            f"queue is saturated (rho = {rho:.3f} >= 1); "
            "open-queue averages are finite only below capacity"
        )
    wait = arrival_rate * second_moment_service / (2.0 * (1.0 - rho))
    response = wait + mean_service_ms
    return OpenQueuePrediction(
        arrival_rate=arrival_rate,
        mean_service_ms=mean_service_ms,
        utilization=rho,
        wait_ms=wait,
        response_ms=response,
        queue_length=arrival_rate * wait,
        in_system=arrival_rate * response,
    )


def mm1_prediction(
    arrival_rate: float, mean_service_ms: float
) -> OpenQueuePrediction:
    """M/M/1 prediction: exponential service with mean *mean_service_ms*.

    The SCV-1 special case of :func:`mg1_prediction`
    (``E[S^2] = 2·E[S]^2``), giving the textbook ``Wq = ρ·E[S]/(1-ρ)``.
    """
    return mg1_prediction(
        arrival_rate, mean_service_ms, 2.0 * mean_service_ms**2
    )


def md1_prediction(
    arrival_rate: float, service_ms: float
) -> OpenQueuePrediction:
    """M/D/1 prediction: deterministic (fixed-size packet) service.

    The SCV-0 special case of :func:`mg1_prediction`
    (``E[S^2] = E[S]^2``); its wait is exactly half the M/M/1 wait at the
    same ρ — fixed-size frames are the kindest traffic a FIFO can carry.
    """
    return mg1_prediction(arrival_rate, service_ms, service_ms**2)


def _check_mm1(arrival_rate: float, mean_service_ms: float, p: float) -> float:
    """Validate M/M/1 quantile arguments; returns ρ."""
    if arrival_rate < 0:
        raise AnalyticError("arrival rate cannot be negative")
    if mean_service_ms <= 0:
        raise AnalyticError("mean service time must be positive")
    if not 0.0 <= p < 1.0:
        raise AnalyticError(f"quantile level must be in [0, 1), got {p}")
    rho = arrival_rate * mean_service_ms
    if rho >= 1.0:
        raise AnalyticError(
            f"queue is saturated (rho = {rho:.3f} >= 1); "
            "wait-time quantiles are finite only below capacity"
        )
    return rho


def mm1_wait_quantile(
    arrival_rate: float, mean_service_ms: float, p: float
) -> float:
    """The *p*-quantile of M/M/1 time-in-queue (Wq), in ms.

    The M/M/1 waiting time has an atom at zero — a fraction ``1 - ρ`` of
    arrivals find the server idle and wait nothing — and above it an
    exponential tail ``P(Wq > t) = ρ·e^{-(μ-λ)t}``.  So the quantile is 0
    for ``p ≤ 1 - ρ`` and ``-ln((1-p)/ρ) / (μ-λ)`` beyond: the closed form
    the tail oracle pins simulated p90/p99 waits against.
    """
    rho = _check_mm1(arrival_rate, mean_service_ms, p)
    if p <= 1.0 - rho or rho == 0.0:
        return 0.0
    mu = 1.0 / mean_service_ms
    return -math.log((1.0 - p) / rho) / (mu - arrival_rate)


def mm1_sojourn_quantile(
    arrival_rate: float, mean_service_ms: float, p: float
) -> float:
    """The *p*-quantile of M/M/1 sojourn time (W = wait + service), in ms.

    The M/M/1 sojourn is *exactly* exponential with rate ``μ - λ`` — no
    atom, no mixture — so every quantile is ``-ln(1-p) / (μ-λ)``.  The
    cleanest tail oracle available: one line, valid at any percentile.
    """
    _check_mm1(arrival_rate, mean_service_ms, p)
    mu = 1.0 / mean_service_ms
    return -math.log(1.0 - p) / (mu - arrival_rate)


def mg1_wait_quantile_bound(
    prediction: OpenQueuePrediction, p: float
) -> float:
    """A distribution-free upper bound on the M/G/1 wait *p*-quantile, in ms.

    Markov's inequality gives ``P(Wq > t) ≤ Wq/t`` for any nonnegative
    wait, hence the *p*-quantile is at most ``Wq / (1-p)``.  Loose but
    assumption-free — it holds for the mixed packet-size traffic where the
    exponential M/M/1 tail does not — so the oracle uses it as a sanity
    ceiling on simulated mixed-traffic percentiles.
    """
    if not 0.0 <= p < 1.0:
        raise AnalyticError(f"quantile level must be in [0, 1), got {p}")
    return prediction.wait_ms / (1.0 - p)


@dataclass(frozen=True)
class ServiceMix:
    """Service-time moments of a weighted mixture of packet classes.

    The shared link carries 1500-byte load frames *and* 64-byte probe
    packets; P–K wants the moments of the mixture.  Build one with
    :func:`service_mix`.
    """

    mean_ms: float  #: E[S] of the mixture
    second_moment: float  #: E[S²] of the mixture
    total_rate: float  #: aggregate arrival rate λ, customers per ms

    @property
    def scv(self) -> float:
        """Squared coefficient of variation of the mixed service time."""
        return self.second_moment / self.mean_ms**2 - 1.0


def service_mix(classes) -> ServiceMix:
    """Mixture moments for ``[(rate_per_ms, service_ms), ...]`` classes.

    Each class contributes its deterministic service time weighted by its
    share of the aggregate arrival rate — the moments P–K needs for a
    superposition of fixed-size packet flows.
    """
    pairs = list(classes)
    if not pairs:
        raise AnalyticError("a service mix needs at least one class")
    total = 0.0
    for rate, service in pairs:
        if rate < 0 or service <= 0:
            raise AnalyticError(
                "mix classes need non-negative rates and positive service"
            )
        total += rate
    if total <= 0:
        raise AnalyticError("a service mix needs positive aggregate rate")
    mean = sum(rate * service for rate, service in pairs) / total
    second = sum(rate * service**2 for rate, service in pairs) / total
    return ServiceMix(mean_ms=mean, second_moment=second, total_rate=total)
