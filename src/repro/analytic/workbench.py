"""Small, model-faithful simulation points for analytic cross-validation.

Each driver here builds the *simulated* side of one predicted-vs-simulated
comparison, on the real kernel and the real network layer — the same hot
paths every experiment exercises — but shaped so a closed-form model
applies exactly:

* :func:`simulate_open_queue` — Poisson arrivals at a single FIFO station
  whose service times are drawn exponential or deterministic, built
  directly on :class:`~repro.sim.engine.Simulator` timers.  The M/M/1 and
  M/D/1 oracle for the event kernel itself.
* :func:`simulate_link_probe` — the actual :class:`~repro.net.link.Link`
  carrying :class:`~repro.net.loadgen.PoissonLoadGenerator` frames plus a
  Poisson stream of 64-byte probes whose one-way delay is measured.  The
  M/G/1 (mixture) oracle for the network layer — the Figures 8–9 hot path.
* :func:`simulate_closed_loop` — N sessions alternating exponential think
  time with one request to a shared exponential FIFO server: the fleet's
  closed-loop shape (one interaction in flight per session), and the Mean
  Value Analysis oracle.

Every driver is a pure function of its parameters and seed (named
:class:`~repro.sim.rng.RngRegistry` streams, insertion-ordered state), so
sweep points cache and parallelize byte-identically, and the differential
suites can compare kernels on them.

Measurements use PASTA deliberately: Poisson probes/arrivals see
time-average state, so the empirical means below estimate exactly the
quantities the closed forms predict.  Warmup windows discard the
empty-start transient before sampling begins.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..errors import AnalyticError
from ..net.link import Link
from ..net.loadgen import PoissonLoadGenerator
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..sim.stats import mean, percentile
from ..units import mbps_to_bytes_per_ms

#: Probe packets are keystroke-sized, like the paper's ping (§6.2).
PROBE_BYTES = 64

#: Full-size load frames, matching the load generator's default.
LOAD_FRAME_BYTES = 1500


@dataclass(frozen=True)
class QueueObservation:
    """What one open-queue simulation point measured.

    ``mean_wait_ms``/``mean_sojourn_ms`` average the tagged customers'
    time-in-queue and time-in-system; ``mean_seen_in_system`` is the mean
    number of customers (waiting + in service) each tagged arrival found —
    by PASTA an estimate of L, comparable to the closed form's
    ``in_system``.  The p90/p99 fields are sample percentiles of the same
    series, the simulated side of the M/M/1 wait- and sojourn-tail
    quantiles (:func:`~repro.analytic.queueing.mm1_sojourn_quantile`).
    """

    samples: int
    mean_wait_ms: float
    mean_sojourn_ms: float
    mean_seen_in_system: float
    duration_ms: float
    wait_p90_ms: float = 0.0
    wait_p99_ms: float = 0.0
    sojourn_p90_ms: float = 0.0
    sojourn_p99_ms: float = 0.0


class _FifoStation:
    """A single-server FIFO queue living on simulator timers.

    Service times come from *service* (a zero-argument callable), so the
    same station body backs exponential (M/M/1) and deterministic (M/D/1)
    points.  Completion callbacks receive the enqueue and service-start
    times.
    """

    def __init__(self, sim: Simulator, service) -> None:
        self.sim = sim
        self.service = service
        self.busy = False
        self.queue: Deque = deque()
        self.in_system = 0

    def submit(self, done) -> None:
        """Enqueue one customer; *done(enqueued_at)* fires at completion."""
        self.in_system += 1
        self.queue.append((self.sim.now, done))
        if not self.busy:
            self._serve_next()

    def _serve_next(self) -> None:
        if not self.queue:
            self.busy = False
            return
        self.busy = True
        enqueued_at, done = self.queue.popleft()
        started = self.sim.now

        def complete() -> None:
            self.in_system -= 1
            done(enqueued_at, started)
            self._serve_next()

        self.sim.schedule(self.service(), complete)


def simulate_open_queue(
    arrival_rate: float,
    mean_service_ms: float,
    *,
    service: str = "exponential",
    duration_ms: float = 60_000.0,
    warmup_ms: float = 1_000.0,
    seed: int = 0,
) -> QueueObservation:
    """One M/M/1 (or M/D/1) simulation point on raw kernel timers.

    Poisson arrivals at *arrival_rate* (per ms) join a single FIFO station
    with mean service *mean_service_ms*; *service* selects
    ``"exponential"`` or ``"deterministic"`` draws.  Samples arriving
    after *warmup_ms* contribute to the averages.
    """
    if arrival_rate <= 0:
        raise AnalyticError("arrival rate must be positive")
    if mean_service_ms <= 0:
        raise AnalyticError("mean service time must be positive")
    if duration_ms <= warmup_ms:
        raise AnalyticError("duration must exceed the warmup window")
    rngs = RngRegistry(seed)
    arrivals = rngs.stream("open:arrivals")
    services = rngs.stream("open:service")
    if service == "exponential":
        draw = lambda: services.expovariate(1.0 / mean_service_ms)  # noqa: E731
    elif service == "deterministic":
        draw = lambda: mean_service_ms  # noqa: E731
    else:
        raise AnalyticError(f"unknown service distribution {service!r}")
    sim = Simulator()
    station = _FifoStation(sim, draw)
    waits: List[float] = []
    sojourns: List[float] = []
    seen: List[float] = []

    def completed(enqueued_at: float, started: float) -> None:
        if enqueued_at >= warmup_ms:
            waits.append(started - enqueued_at)
            sojourns.append(sim.now - enqueued_at)

    def arrive() -> None:
        if sim.now >= warmup_ms:
            seen.append(float(station.in_system))
        station.submit(completed)
        sim.schedule(arrivals.expovariate(arrival_rate), arrive)

    sim.schedule(arrivals.expovariate(arrival_rate), arrive)
    sim.run_until(duration_ms)
    if not waits:
        raise AnalyticError("open-queue point produced no samples")
    return QueueObservation(
        samples=len(waits),
        mean_wait_ms=mean(waits),
        mean_sojourn_ms=mean(sojourns),
        mean_seen_in_system=mean(seen),
        duration_ms=duration_ms - warmup_ms,
        wait_p90_ms=percentile(waits, 90.0),
        wait_p99_ms=percentile(waits, 99.0),
        sojourn_p90_ms=percentile(sojourns, 90.0),
        sojourn_p99_ms=percentile(sojourns, 99.0),
    )


@dataclass(frozen=True)
class LinkProbeObservation:
    """What one loaded-link simulation point measured.

    ``mean_delay_ms`` is the probes' one-way delay (queue wait + own
    transmission + propagation); ``mean_seen_in_system`` the packets
    (queued + on the wire) each probe found at send time; ``utilization``
    the link's measured busy fraction over the sampled window.  The
    p90/p99 delay fields are sample percentiles of the same delays — the
    simulated side the Markov tail bound
    (:func:`~repro.analytic.queueing.mg1_wait_quantile_bound`) must cap.
    """

    samples: int
    mean_delay_ms: float
    mean_seen_in_system: float
    utilization: float
    offered_mbps: float
    duration_ms: float
    delay_p90_ms: float = 0.0
    delay_p99_ms: float = 0.0


def simulate_link_probe(
    rho: float,
    *,
    bandwidth_mbps: float = 10.0,
    probe_interval_ms: float = 5.0,
    duration_ms: float = 30_000.0,
    warmup_ms: float = 1_000.0,
    seed: int = 0,
) -> LinkProbeObservation:
    """One-way probe delay through the shared link at offered load *rho*.

    A :class:`~repro.net.loadgen.PoissonLoadGenerator` offers
    ``rho * bandwidth_mbps`` of 1500-byte frames while 64-byte probes
    arrive as their own Poisson stream (mean *probe_interval_ms* apart) on
    the same FIFO wire — the Figures 8–9 medium, instrumented for the
    per-packet delay P–K predicts.
    """
    if not 0.0 < rho < 1.0:
        raise AnalyticError("offered utilization must be in (0, 1)")
    if probe_interval_ms <= 0:
        raise AnalyticError("probe interval must be positive")
    if duration_ms <= warmup_ms:
        raise AnalyticError("duration must exceed the warmup window")
    rngs = RngRegistry(seed)
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=bandwidth_mbps)
    load = PoissonLoadGenerator(
        sim,
        link,
        rho * bandwidth_mbps,
        rngs.stream("link:load"),
        packet_bytes=LOAD_FRAME_BYTES,
    )
    probes = rngs.stream("link:probes")
    delays: List[float] = []
    seen: List[float] = []

    def probe() -> None:
        sent_at = sim.now
        if sent_at >= warmup_ms:
            # Waiting packets plus the one on the wire: what this arrival
            # "sees in system", the PASTA estimate of L.
            seen.append(link.queue_depth + (1.0 if link.busy else 0.0))

            def delivered(packet: Packet) -> None:
                delays.append(sim.now - sent_at)

            link.send(Packet(PROBE_BYTES, channel="probe"), delivered)
        else:
            link.send(Packet(PROBE_BYTES, channel="probe"))
        sim.schedule(probes.expovariate(1.0 / probe_interval_ms), probe)

    sim.schedule(probes.expovariate(1.0 / probe_interval_ms), probe)
    sim.run_until(duration_ms)
    load.stop()
    if not delays:
        raise AnalyticError("link point produced no probe samples")
    return LinkProbeObservation(
        samples=len(delays),
        mean_delay_ms=mean(delays),
        mean_seen_in_system=mean(seen),
        utilization=link.utilization(warmup_ms, duration_ms),
        offered_mbps=rho * bandwidth_mbps,
        duration_ms=duration_ms - warmup_ms,
        delay_p90_ms=percentile(delays, 90.0),
        delay_p99_ms=percentile(delays, 99.0),
    )


@dataclass(frozen=True)
class ClosedLoopObservation:
    """What one closed-loop simulation point measured.

    ``throughput`` counts completed interactions per ms over the sampled
    window; ``mean_response_ms`` averages enqueue-to-completion times —
    the two quantities exact MVA predicts as X(N) and R(N).
    """

    sessions: int
    completions: int
    throughput: float
    mean_response_ms: float
    duration_ms: float


def simulate_closed_loop(
    sessions: int,
    *,
    think_ms: float = 200.0,
    service_ms: float = 10.0,
    duration_ms: float = 60_000.0,
    warmup_ms: float = 2_000.0,
    seed: int = 0,
) -> ClosedLoopObservation:
    """N think/interact sessions sharing one exponential FIFO server.

    Each session draws an exponential think time (mean *think_ms*),
    submits exactly one request to the shared station (exponential
    service, mean *service_ms*), waits for completion, and thinks again —
    the fleet's one-in-flight closed loop, in the product-form shape exact
    MVA solves.
    """
    if sessions < 1:
        raise AnalyticError("a closed loop needs at least one session")
    if think_ms <= 0 or service_ms <= 0:
        raise AnalyticError("think and service times must be positive")
    if duration_ms <= warmup_ms:
        raise AnalyticError("duration must exceed the warmup window")
    rngs = RngRegistry(seed)
    sim = Simulator()
    station = _FifoStation(
        sim, lambda: rngs.stream("closed:service").expovariate(1.0 / service_ms)
    )
    responses: List[float] = []
    completions = [0]

    def spawn(index: int) -> None:
        think_rng = rngs.stream(f"closed:think:{index}")

        def think() -> None:
            sim.schedule(think_rng.expovariate(1.0 / think_ms), submit)

        def submit() -> None:
            station.submit(completed)

        def completed(enqueued_at: float, started: float) -> None:
            if enqueued_at >= warmup_ms:
                completions[0] += 1
                responses.append(sim.now - enqueued_at)
            think()

        think()

    for index in range(sessions):
        spawn(index)
    sim.run_until(duration_ms)
    if not responses:
        raise AnalyticError("closed-loop point produced no samples")
    return ClosedLoopObservation(
        sessions=sessions,
        completions=completions[0],
        throughput=completions[0] / (duration_ms - warmup_ms),
        mean_response_ms=mean(responses),
        duration_ms=duration_ms - warmup_ms,
    )
