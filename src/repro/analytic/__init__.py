"""Closed-form queueing models cross-validated against the simulator.

The differential-equivalence suites prove the optimized kernel matches the
frozen one byte-for-byte — but nothing there checks that *either* matches
reality.  This package supplies the independent check: textbook queueing
theory (Gunther's X-terminal analysis, Gray's NC-farm arithmetic) applied
to the exact scenarios the simulator runs, with a comparison harness that
reports relative error.

* :mod:`~repro.analytic.queueing` — M/M/1, M/D/1, and M/G/1
  (Pollaczek–Khinchine) open-queue predictions, plus service-mixture
  moments for multi-class traffic.
* :mod:`~repro.analytic.mva` — exact Mean Value Analysis for closed
  think/interact networks (the fleet's session shape), with the
  ``N* = (Z + ΣD)/D_max`` saturation knee.
* :mod:`~repro.analytic.workbench` — model-faithful simulation points on
  the real kernel and network layer.
* :mod:`~repro.analytic.validate` — side-by-side comparison rows with
  relative errors; the oracle suite in ``tests/analytic`` asserts they
  stay within tolerance in light traffic on both kernels.
* :mod:`~repro.analytic.experiments` — the registered ``analytic_link``
  and ``analytic_closed`` overlay experiments.
"""

from .mva import MvaSolution, saturation_population, solve_mva, solve_mva_curve
from .queueing import (
    OpenQueuePrediction,
    ServiceMix,
    md1_prediction,
    mg1_prediction,
    mg1_wait_quantile_bound,
    mm1_prediction,
    mm1_sojourn_quantile,
    mm1_wait_quantile,
    service_mix,
)
from .validate import (
    ComparisonRow,
    compare_closed_loop,
    compare_link_probe,
    compare_open_queue,
    compare_open_queue_quantiles,
    predict_link_probe,
)
from .workbench import (
    ClosedLoopObservation,
    LinkProbeObservation,
    QueueObservation,
    simulate_closed_loop,
    simulate_link_probe,
    simulate_open_queue,
)

__all__ = [
    "MvaSolution",
    "saturation_population",
    "solve_mva",
    "solve_mva_curve",
    "OpenQueuePrediction",
    "ServiceMix",
    "md1_prediction",
    "mg1_prediction",
    "mg1_wait_quantile_bound",
    "mm1_prediction",
    "mm1_sojourn_quantile",
    "mm1_wait_quantile",
    "service_mix",
    "ComparisonRow",
    "compare_closed_loop",
    "compare_link_probe",
    "compare_open_queue",
    "compare_open_queue_quantiles",
    "predict_link_probe",
    "ClosedLoopObservation",
    "LinkProbeObservation",
    "QueueObservation",
    "simulate_closed_loop",
    "simulate_link_probe",
    "simulate_open_queue",
]
