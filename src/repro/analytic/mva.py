"""Exact Mean Value Analysis for closed single-class queueing networks.

The fleet's sessions are **closed-loop**: a user thinks, submits one
interaction, waits for the echo, thinks again — at most one request in
flight per session (:class:`repro.fleet.cluster.FleetSession` enforces
exactly this).  The right analytic model is therefore a closed network:
``N`` customers cycling between a think-time (delay) station ``Z`` and one
or more FIFO queueing stations with per-visit service demands ``D_i``.

Reiser–Lavenberg exact MVA computes the steady state by recursion on the
population, using the arrival theorem (a customer arriving at station *i*
in a network of *n* customers sees the station as the ``n-1``-customer
network left it)::

    R_i(n) = D_i * (1 + Q_i(n-1))      # response per visit
    X(n)   = n / (Z + sum_i R_i(n))    # cycle throughput
    Q_i(n) = X(n) * R_i(n)             # Little, per station

Exact for product-form networks (exponential FIFO service, random
routing); the light-traffic oracle tolerance in ``tests/analytic`` covers
the regimes where the simulated fleet shape satisfies those assumptions
approximately.

The asymptotic bounds the planner cross-check leans on::

    X(N) <= 1/D_max                    # the bottleneck ceiling
    X(N) <= N/(Z + sum_i D_i)          # the no-queueing ceiling
    N*    = (Z + sum_i D_i) / D_max    # where the two cross (the knee)

Times are milliseconds; throughput is cycles per millisecond.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import AnalyticError


@dataclass(frozen=True)
class MvaSolution:
    """Steady state of a closed network at one population ``n``.

    ``response_ms`` sums the queueing stations only (the think station is
    not part of response time); ``cycle_ms = think + response`` is one full
    think+interact loop, and ``throughput = n / cycle_ms`` by the response
    time law.
    """

    population: int  #: N, customers in the network
    think_ms: float  #: Z, the delay station's mean
    demands_ms: Tuple[float, ...]  #: D_i per queueing station
    throughput: float  #: X(N), cycles per ms
    response_ms: float  #: R(N) = Σ R_i, total time at queueing stations
    station_response_ms: Tuple[float, ...]  #: R_i(N) per station
    station_queue: Tuple[float, ...]  #: Q_i(N) per station

    @property
    def cycle_ms(self) -> float:
        """One full loop: think plus response."""
        return self.think_ms + self.response_ms

    @property
    def utilizations(self) -> Tuple[float, ...]:
        """Per-station utilization ``U_i = X·D_i`` (utilization law)."""
        return tuple(self.throughput * d for d in self.demands_ms)


def solve_mva(
    population: int,
    think_ms: float,
    demands_ms: Sequence[float],
) -> MvaSolution:
    """Exact MVA at one population; see the module formulas.

    *population* customers cycle between a *think_ms* delay station and
    one FIFO station per entry of *demands_ms* (mean service demand per
    visit, ms).  Returns the ``N = population`` point of the recursion.
    """
    return solve_mva_curve(population, think_ms, demands_ms)[-1]


def solve_mva_curve(
    max_population: int,
    think_ms: float,
    demands_ms: Sequence[float],
) -> List[MvaSolution]:
    """The full MVA recursion: solutions for ``n = 1 .. max_population``.

    One pass of the exact recursion yields every intermediate population
    for free; sweeps over session counts use the curve directly instead of
    re-running the recursion per point.
    """
    demands = tuple(float(d) for d in demands_ms)
    if max_population < 1:
        raise AnalyticError("a closed network needs at least one customer")
    if think_ms < 0:
        raise AnalyticError("think time cannot be negative")
    if not demands:
        raise AnalyticError("a closed network needs at least one station")
    if any(d <= 0 for d in demands):
        raise AnalyticError("station demands must be positive")
    queue = [0.0] * len(demands)
    curve: List[MvaSolution] = []
    for n in range(1, max_population + 1):
        responses = tuple(d * (1.0 + q) for d, q in zip(demands, queue))
        response = sum(responses)
        throughput = n / (think_ms + response)
        queue = [throughput * r for r in responses]
        curve.append(
            MvaSolution(
                population=n,
                think_ms=think_ms,
                demands_ms=demands,
                throughput=throughput,
                response_ms=response,
                station_response_ms=responses,
                station_queue=tuple(queue),
            )
        )
    return curve


def saturation_population(
    think_ms: float, demands_ms: Sequence[float]
) -> float:
    """The knee ``N* = (Z + Σ D_i) / D_max`` of the closed network.

    Below ``N*`` the network is think-limited (throughput grows almost
    linearly with customers); above it the bottleneck station is saturated
    and added customers only queue.  Gray's NC-farm sizing is exactly this
    number for the station that binds.
    """
    demands = [float(d) for d in demands_ms]
    if think_ms < 0:
        raise AnalyticError("think time cannot be negative")
    if not demands or any(d <= 0 for d in demands):
        raise AnalyticError("station demands must be positive")
    return (think_ms + sum(demands)) / max(demands)
