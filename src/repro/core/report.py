"""Plain-text rendering of tables and series for benches and examples.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ExperimentError

#: Eight-level unicode bars for quick-look series.
_BARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """An aligned, pipe-separated text table."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    for row in materialized:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    xs: Sequence[object],
    ys: Sequence[float],
    *,
    title: Optional[str] = None,
    y_format: str = "{:.3f}",
) -> str:
    """A two-column table for a figure's series."""
    if len(xs) != len(ys):
        raise ExperimentError("series axes differ in length")
    rows = [(x, y_format.format(y)) for x, y in zip(xs, ys)]
    return format_table([x_label, y_label], rows, title=title)


def write_csv(
    path: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> None:
    """Write a series/table as CSV (creating parent directories)."""
    import csv
    import os

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(list(row))


#: Per-server fleet gauge rows, e.g. ``fleet.load.s03 (peak)`` — the
#: ``sNN`` label is the zero-padded server index the fleet layer assigns.
_FLEET_SERVER_ROW = re.compile(
    r"^(?P<base>fleet\.[A-Za-z0-9_.]+)\.s(?P<index>\d+) \(peak\)$"
)


def _collapse_fleet_rows(
    rows: Sequence[Sequence[object]],
) -> List[Sequence[object]]:
    """Fold per-server ``fleet.*.sNN`` gauge rows into one row per metric.

    A 64-server fleet publishes 64 ``fleet.load.sNN`` gauges; the summary
    table wants the fleet's *shape*, not a page of near-identical rows.
    Each group collapses — at the position of its first member — into
    ``fleet.<metric> (per-server peak)`` with count/min/mean/max and a
    per-server sparkline (servers in index order).  Rows that do not match
    the fleet naming scheme (every pre-fleet experiment) pass through
    untouched, so existing metrics-summary output is byte-identical.
    """
    collapsed: List[Sequence[object]] = []
    groups: dict = {}
    for metric, value in rows:
        match = _FLEET_SERVER_ROW.match(str(metric))
        if match is None:
            collapsed.append((metric, value))
            continue
        try:
            reading = float(str(value).replace(",", ""))
        except ValueError:
            collapsed.append((metric, value))
            continue
        base = match.group("base")
        group = groups.get(base)
        if group is None:
            # Placeholder keeps the group anchored where it first appeared.
            groups[base] = group = (len(collapsed), [])
            collapsed.append(None)  # type: ignore[arg-type]
        group[1].append((int(match.group("index")), reading))
    for base, (position, members) in groups.items():
        members.sort()
        readings = [reading for __, reading in members]
        mean = sum(readings) / len(readings)
        collapsed[position] = (
            f"{base} (per-server peak)",
            f"n={len(readings)} min={min(readings):.6g} "
            f"mean={mean:.6g} max={max(readings):.6g} {sparkline(readings)}",
        )
    return collapsed


def format_metrics_summary(
    experiment: str, rows: Sequence[Sequence[object]]
) -> str:
    """The metrics-summary table ``repro trace`` renders after a run.

    *rows* are ``(metric, value)`` pairs, typically produced by
    :func:`repro.obs.summary_rows`; values arrive pre-formatted so the
    table stays byte-stable across executor backends.  Per-server fleet
    gauges (``fleet.*.sNN``) are collapsed to one row per metric — see
    :func:`_collapse_fleet_rows`; all other rows render verbatim.
    """
    return format_table(
        ["metric", "value"],
        _collapse_fleet_rows(rows),
        title=f"{experiment}: metrics summary",
    )


def format_overlay(
    x_label: str,
    xs: Sequence[object],
    series: Sequence[Tuple[str, Sequence[float], Sequence[float]]],
    *,
    title: Optional[str] = None,
    y_format: str = "{:.4f}",
) -> str:
    """A predicted-vs-simulated overlay table with relative-error columns.

    *series* holds ``(name, predicted, simulated)`` triples, one per
    observable; each contributes three columns — ``<name> pred``,
    ``<name> sim``, ``<name> err`` — with the error rendered as a percent
    of the prediction.  The analytic experiments print their comparison
    curves through this helper so every overlay reads the same way.
    """
    headers: List[str] = [x_label]
    for name, predicted, simulated in series:
        if len(predicted) != len(xs) or len(simulated) != len(xs):
            raise ExperimentError(f"overlay series {name!r} length mismatch")
        headers += [f"{name} pred", f"{name} sim", f"{name} err"]
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for __, predicted, simulated in series:
            error = abs(simulated[i] - predicted[i]) / abs(predicted[i])
            row += [
                y_format.format(predicted[i]),
                y_format.format(simulated[i]),
                f"{error * 100:.1f}%",
            ]
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_slo_summary(reports: Iterable[object], *, title: Optional[str] = None) -> str:
    """One row per :class:`repro.slo.SloReport`: tail percentiles and burn.

    Renders the SLO accounting the ``slo_*`` experiments produce — budget,
    observed p50/p90/p99/p99.9, violation rate, and error-budget burn
    (whole-stream and worst-window) — in the same aligned style as every
    other table, so experiment outputs stay diffable byte-for-byte.
    """
    rows = [
        [
            r.operation,
            r.samples,
            f"{r.budget_ms:g}",
            f"{r.percentiles[0]:.2f}",
            f"{r.percentiles[1]:.2f}",
            f"{r.percentiles[2]:.2f}",
            f"{r.percentiles[3]:.2f}",
            r.violations,
            f"{r.violation_rate * 100:.2f}%",
            f"{r.budget_burn:.2f}",
            f"{r.worst_window_burn:.2f}",
        ]
        for r in reports
    ]
    return format_table(
        [
            "operation",
            "n",
            "budget ms",
            "p50",
            "p90",
            "p99",
            "p99.9",
            "viol",
            "viol rate",
            "burn",
            "worst burn",
        ],
        rows,
        title=title,
    )


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode rendering of a series' shape."""
    if not values:
        raise ExperimentError("empty series")
    lo = min(values)
    hi = max(values)
    if hi == lo:
        return _BARS[0] * len(values)
    span = hi - lo
    return "".join(
        _BARS[min(len(_BARS) - 1, int((v - lo) / span * len(_BARS)))]
        for v in values
    )
