"""The behaviour → load → latency evaluation framework (§3).

The paper's methodological contribution is a structured way to evaluate
thin-client server operating systems:

1. pick a **hardware resource** (processor, memory, network);
2. characterize how **user behaviour** generates *load* on it, splitting
   **compulsory load** (behaviour-independent: multi-user services, clock
   ticks, session state) from **dynamic load** (application-driven);
3. analyze how the operating system's abstractions translate that load
   into **user-perceived latency**.

This module gives those notions first-class types so experiments read like
the paper: a :class:`ResourceStudy` binds a resource to load sources and a
latency probe, and :func:`evaluate` runs the pipeline and assesses the
result against a perception threshold.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..errors import ExperimentError
from .latency import PERCEPTION_THRESHOLD_MS, LatencyAssessment, assess


@runtime_checkable
class Runnable(Protocol):
    """Anything an executor can run: a name plus a ``run`` entry point.

    This is the unification of the package's two experiment shapes:
    :class:`ResourceStudy` (whose ``run`` evaluates the study's probe into
    a :class:`StudyResult`) and :class:`repro.core.ParameterSweep` (whose
    ``run`` computes one point of a sweep).  Schedulers, CLIs and executors
    that accept a ``Runnable`` work with either without caring which.
    """

    name: str

    def run(self, *args: Any, **kwargs: Any) -> Any:
        """Perform the unit of work this runnable names."""
        ...


class Resource(enum.Enum):
    """The hardware resources of the paper's analysis (§4, §5, §6)."""

    PROCESSOR = "processor"
    MEMORY = "memory"
    NETWORK = "network"


class LoadKind(enum.Enum):
    """Compulsory load exists regardless of behaviour; dynamic load doesn't."""

    COMPULSORY = "compulsory"
    DYNAMIC = "dynamic"


@dataclass(frozen=True)
class LoadSource:
    """One contributor of load on a resource."""

    name: str
    kind: LoadKind
    resource: Resource
    #: Load in the resource's natural unit: CPU fraction, bytes, or Mbps.
    magnitude: float

    def __post_init__(self) -> None:
        if self.magnitude < 0:
            raise ExperimentError("load magnitude cannot be negative")


@dataclass
class LoadProfile:
    """The decomposed load on one resource."""

    resource: Resource
    sources: List[LoadSource] = field(default_factory=list)

    def add(self, source: LoadSource) -> None:
        """Attach one load source (must target this profile's resource)."""
        if source.resource is not self.resource:
            raise ExperimentError(
                f"source {source.name!r} is {source.resource.value} load, "
                f"not {self.resource.value}"
            )
        self.sources.append(source)

    def total(self, kind: Optional[LoadKind] = None) -> float:
        """Summed load magnitude, optionally restricted to one kind."""
        return sum(
            s.magnitude
            for s in self.sources
            if kind is None or s.kind is kind
        )

    @property
    def compulsory(self) -> float:
        """Behaviour-independent load (multi-user services, clock ticks)."""
        return self.total(LoadKind.COMPULSORY)

    @property
    def dynamic(self) -> float:
        """Application-driven load, dependent on user behaviour."""
        return self.total(LoadKind.DYNAMIC)


@dataclass
class ResourceStudy:
    """One §4/§5/§6-style study: load in, operation latencies out.

    ``probe`` runs the latency-sensitive operation under the described
    load and returns the observed per-operation latencies in ms.
    """

    name: str
    resource: Resource
    load: LoadProfile
    probe: Callable[[], Sequence[float]]
    threshold_ms: float = PERCEPTION_THRESHOLD_MS

    def run(self, *, threshold_ms: Optional[float] = None) -> "StudyResult":
        """Evaluate this study (the :class:`Runnable` entry point).

        ``study.run()`` is :func:`evaluate(study) <evaluate>`; pass
        *threshold_ms* to re-assess against a different perception
        threshold without rebuilding the study.
        """
        return evaluate(self, threshold_ms=threshold_ms)


@dataclass(frozen=True)
class StudyResult:
    """A completed study: the load decomposition plus the assessment."""

    name: str
    resource: Resource
    compulsory_load: float
    dynamic_load: float
    assessment: LatencyAssessment


def evaluate(
    study: ResourceStudy, *, threshold_ms: Optional[float] = None
) -> StudyResult:
    """Run one resource study end to end.

    *threshold_ms* overrides the study's own perception threshold for this
    evaluation only — callers comparing a study against several thresholds
    no longer have to rebuild it per threshold.
    """
    latencies = list(study.probe())
    if not latencies:
        raise ExperimentError(f"study {study.name!r} produced no operations")
    if threshold_ms is None:
        threshold_ms = study.threshold_ms
    return StudyResult(
        name=study.name,
        resource=study.resource,
        compulsory_load=study.load.compulsory,
        dynamic_load=study.load.dynamic,
        assessment=assess(latencies, threshold_ms),
    )


def compare(results: Sequence[StudyResult]) -> Dict[str, StudyResult]:
    """Index results by study name, verifying uniqueness."""
    out: Dict[str, StudyResult] = {}
    for result in results:
        if result.name in out:
            raise ExperimentError(f"duplicate study name {result.name!r}")
        out[result.name] = result
    return out
