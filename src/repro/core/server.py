"""The thin-client server: every substrate composed end to end.

A :class:`ThinClientServer` assembles the full measured environment of the
paper on one simulator clock:

* a CPU running the OS's scheduler with its idle-activity profile (§4);
* a virtual-memory subsystem with the OS base usage pinned (§5);
* a shared network link carrying TCP/IP-framed protocol traffic (§6);
* per-user sessions, each with its login process memory, an interactive
  echo thread, a protocol encoder (RDP for TSE, X/LBX for Linux), and a
  :class:`~repro.core.client.ThinClient` endpoint that measures
  user-perceived latency.

The examples and integration tests drive complete interactions through
this composition: a keystroke leaves the client, crosses the link, wakes
the session thread under the OS scheduler, is encoded by the protocol,
crosses the link again, and stamps a latency at the client.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..cpu.cpusim import CPU
from ..cpu.idle import idle_profile, make_scheduler
from ..cpu.thread import Burst, Thread
from ..errors import ExperimentError
from ..gui.drawing import DisplayOp, DrawText
from ..gui.input import InputEvent, KeyPress
from ..gui.session import session_setup
from ..memory.disk import PagingDisk
from ..memory.physical import FramePool
from ..memory.replacement import make_policy
from ..memory.sessions import idle_memory_bytes, session_profile
from ..memory.vm import VirtualMemory
from ..net.faults import FaultPlan, FaultyLink, make_link
from ..net.framing import TCPIP
from ..net.tcpstream import TcpConnection
from ..protocols import make_protocol
from ..protocols.rdp import RDPProtocol
from ..sim.engine import PeriodicTask, Simulator
from ..sim.rng import RngRegistry
from ..units import mb
from ..workloads.typing import ECHO_BURST_MS
from .client import ThinClient


@dataclass(frozen=True)
class ServerConfig:
    """What to build: OS, hardware, and protocol."""

    os_name: str  #: "nt_tse" or "linux"
    protocol_name: str  #: "rdp", "x", or "lbx"
    cpu_speed: float = 1.0
    physical_bytes: int = mb(128)
    bandwidth_mbps: float = 10.0
    include_idle_activity: bool = True
    session_variant: str = "typical"
    #: Optional network adversity; None (or a disabled plan) keeps the
    #: paper's perfect wire and the pre-fault-layer behaviour, byte for byte.
    faults: Optional[FaultPlan] = None

    @classmethod
    def tse(cls, **overrides) -> "ServerConfig":
        """NT TSE serving RDP — one of the paper's two systems."""
        return replace(cls(os_name="nt_tse", protocol_name="rdp"), **overrides)

    @classmethod
    def linux(cls, **overrides) -> "ServerConfig":
        """Linux with X Windows — the paper's other system."""
        return replace(cls(os_name="linux", protocol_name="x"), **overrides)

    @classmethod
    def linux_lbx(cls, **overrides) -> "ServerConfig":
        """Linux with the LBX proxy on the wire."""
        return replace(cls(os_name="linux", protocol_name="lbx"), **overrides)


class UserSession:
    """One logged-in user: session memory, echo thread, protocol, client."""

    def __init__(self, server: "ThinClientServer", name: str) -> None:
        self.server = server
        self.name = name
        sim = server.sim

        # Login memory: the §5.1.1 compulsory per-user load.
        profile = session_profile(
            server.config.os_name, server.config.session_variant
        )
        self.memory = server.vm.create_process(
            f"{name}:login", profile.total_bytes, interactive=True
        )
        server.vm.touch_sequential(self.memory, 0, self.memory.num_pages)

        # The interactive application thread.
        self.echo_thread = Thread(f"{name}:app", gui=True, foreground=True)
        server.cpu.add_thread(self.echo_thread)

        # Protocol encoder + wire.  Interactive sessions flush display
        # updates immediately (the RDP update timer is far below our
        # keystroke granularity).
        self.protocol = make_protocol(server.config.protocol_name)
        if isinstance(self.protocol, RDPProtocol):
            self.protocol.display_flush_steps = 1
        # On a faulted wire the transport turns on retransmission and the
        # encoder hears about corruption/outages to degrade gracefully.
        faulted = isinstance(server.link, FaultyLink)
        if faulted:
            server.link.add_listener(self.protocol)
        self.connection = TcpConnection(
            sim,
            server.link,
            stack=TCPIP,
            protocol=self.protocol.name,
            reliable=faulted,
            max_retries=self.protocol.max_message_retries,
        )
        self.client = ThinClient(sim, f"{name}:client")
        self.connected = True
        self._typing_task: Optional[PeriodicTask] = None
        self._webpage_players: List = []

        # Session establishment bytes (§6.1.1).
        setup_system = "nt_tse" if self.protocol.name == "rdp" else "linux"
        for message in session_setup(setup_system).messages:
            self.connection.send_message(
                message.direction, message.payload_bytes, kind=message.name
            )

    # -- one interaction, end to end ------------------------------------------

    def press_key(
        self, key: int = 65, ops: Optional[List[DisplayOp]] = None
    ) -> None:
        """The user presses a key; the echo crosses the full stack."""
        self.client.input_sent()
        events: List[InputEvent] = [KeyPress(key)]
        display_ops = ops if ops is not None else [DrawText(1)]
        for message in self.protocol.encode_input_step(events):
            self.connection.send_message(
                message.channel,
                message.payload_bytes,
                kind=message.kind,
                on_delivered=lambda m, d=display_ops: self._serve_input(d),
            )

    #: Session-memory pages the echo path touches per keystroke (§5.2:
    #: the response set must be resident or the user waits on the disk).
    HOT_PAGES_PER_KEYSTROKE = 4

    def _serve_input(self, ops: List[DisplayOp]) -> None:
        """Input arrived at the server: wake the app thread to respond."""
        if not self.connected:
            return  # the message outlived its session (logout race)
        self.server.cpu.submit(
            self.echo_thread,
            Burst(ECHO_BURST_MS, on_complete=lambda __: self._touch_memory(ops)),
        )

    def _touch_memory(self, ops: List[DisplayOp]) -> None:
        """The echo path references its working set before drawing.

        Normally these are memory-hierarchy hits and cost nothing; after a
        streaming job has paged the session out (§5.2), each one is a disk
        wait, and the display update is delayed accordingly.
        """
        paging_ms = 0.0
        pages = min(self.HOT_PAGES_PER_KEYSTROKE, self.memory.num_pages)
        for vpn in range(pages):
            paging_ms += self.server.vm.touch(self.memory, vpn).latency_ms
        if paging_ms > 0.01:
            self.server.sim.schedule(
                paging_ms, lambda: self._send_display(ops)
            )
        else:
            self._send_display(ops)

    def _send_display(self, ops: List[DisplayOp]) -> None:
        messages = self.protocol.encode_display_step(ops)
        messages.extend(self.protocol.flush_display())
        for message in messages:
            self.connection.send_message(
                message.channel,
                message.payload_bytes,
                kind=message.kind,
                on_delivered=self.client.display_received,
            )

    # -- browsing: animated pages over this session's connection -----------------

    def open_webpage(self, variant: str = "both") -> None:
        """Open the §6.1.3 synthetic web page in this session's browser.

        The page's animations render server-side and stream over this
        session's display channel — on a shared link, a handful of these
        sessions saturate the medium ("If just five users open their
        browsers to a page like this, the network link becomes
        saturated").
        """
        from ..workloads.animation import banner_ad, marquee

        if self._webpage_players:
            raise ExperimentError(f"session {self.name!r} already browsing")
        specs = []
        if variant in ("both", "marquee"):
            specs.append(marquee())
        if variant in ("both", "banner"):
            specs.append(banner_ad())
        if not specs:
            raise ExperimentError(f"unknown page variant {variant!r}")
        from ..workloads.animation import AnimationPlayer

        for spec in specs:
            self._webpage_players.append(
                AnimationPlayer(
                    self.server.sim,
                    spec,
                    lambda op: self._send_display([op]),
                )
            )

    def close_webpage(self) -> None:
        """Stop this session's page animations (idempotent)."""
        for player in self._webpage_players:
            player.stop()
        self._webpage_players = []

    # -- sustained typing ---------------------------------------------------------

    def start_typing(self, interval_ms: float = 50.0) -> None:
        """Engage key repeat at ``1000 / interval_ms`` Hz."""
        if self._typing_task is not None:
            raise ExperimentError(f"session {self.name!r} is already typing")
        self._typing_task = self.server.sim.every(
            interval_ms, lambda: self.press_key()
        )

    def stop_typing(self) -> None:
        """Release the held key (idempotent)."""
        if self._typing_task is not None:
            self._typing_task.stop()
            self._typing_task = None


class ThinClientServer:
    """The composed server; see module docstring."""

    def __init__(
        self,
        config: ServerConfig,
        *,
        seed: int = 0,
        sim: Optional[Simulator] = None,
    ) -> None:
        self.config = config
        self.sim = sim if sim is not None else Simulator()
        self.rngs = RngRegistry(seed)

        # Processor.
        self.cpu = CPU(
            self.sim,
            make_scheduler(config.os_name),
            name=config.os_name,
            speed=config.cpu_speed,
        )
        self._idle = None
        if config.include_idle_activity:
            self._idle = idle_profile(config.os_name).install(
                self.sim, self.cpu, self.rngs
            )

        # Memory.
        pool = FramePool(config.physical_bytes)
        pool.pin(idle_memory_bytes(config.os_name))
        self.vm = VirtualMemory(
            pool,
            PagingDisk(self.rngs.stream("server:disk")),
            make_policy("lru"),
        )

        # Network.
        self.link = make_link(
            self.sim, config.faults, bandwidth_mbps=config.bandwidth_mbps
        )

        self.sessions: Dict[str, UserSession] = {}

    def connect(self, name: str) -> UserSession:
        """Log a new user in; returns the live session."""
        if name in self.sessions:
            raise ExperimentError(f"session {name!r} already connected")
        session = UserSession(self, name)
        self.sessions[name] = session
        return session

    def disconnect(self, name: str) -> None:
        """Log a user out: stop their activity, free threads and memory."""
        session = self.sessions.pop(name, None)
        if session is None:
            raise ExperimentError(f"no session {name!r}")
        session.connected = False
        session.stop_typing()
        session.close_webpage()
        self.cpu.kill(session.echo_thread)
        self.vm.destroy_process(session.memory)

    def run(self, duration_ms: float) -> None:
        """Advance the whole composed system."""
        self.sim.run(duration_ms)

    @property
    def session_count(self) -> int:
        """Number of users currently logged in."""
        return len(self.sessions)

    def report(self, t0: float = 0.0, t1: Optional[float] = None) -> Dict[str, object]:
        """A per-resource snapshot over ``[t0, t1)`` (defaults to all time).

        The observability surface a deployer would watch: processor and
        link utilization, run-queue depth, paging activity, and each
        session's user-perceived latency assessment (when it has
        interacted).
        """
        end = self.sim.now if t1 is None else t1
        if end <= t0:
            raise ExperimentError("empty report window")
        sessions = {}
        for name, session in self.sessions.items():
            latencies = session.client.latencies_ms
            sessions[name] = (
                session.client.assessment() if latencies else None
            )
        return {
            "os": self.config.os_name,
            "protocol": self.config.protocol_name,
            "window_ms": (t0, end),
            "cpu_utilization": self.cpu.utilization(t0, end),
            "run_queue_length": self.cpu.run_queue_length,
            "link_utilization": self.link.utilization(t0, end),
            "link_bytes": self.link.bytes_sent,
            "page_faults": self.vm.total_faults,
            "page_evictions": self.vm.total_evictions,
            "free_frames": self.vm.pool.free_frames,
            "sessions": sessions,
        }
