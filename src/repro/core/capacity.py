"""Capacity planning: the question the paper says deployers actually ask.

"Ultimately, those interested in deploying interface services need to know
the maximum number of concurrent users their servers can support given some
hardware configuration, and what impact on users yields this maximum
value" (§3.1).

:func:`plan_capacity` answers it per resource and takes the minimum —
exposing *which* resource gates the deployment, the way the paper's
§6.1.3 does for the network ("if just five users open their browsers to a
page like this, the network link becomes saturated").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Mapping

from ..cpu.idle import idle_profile
from ..errors import ExperimentError
from ..memory.sessions import sessions_that_fit
from ..units import mb
from ..workloads.behavior import BehaviorProfile


@dataclass(frozen=True)
class CapacityReport:
    """Per-resource user ceilings and the binding constraint."""

    os_name: str
    profile_name: str
    cpu_users: int
    memory_users: int
    network_users: int

    @property
    def max_users(self) -> int:
        """The deployable user count: the smallest per-resource ceiling."""
        return min(self.cpu_users, self.memory_users, self.network_users)

    @property
    def limiting_resource(self) -> str:
        """Which resource gates the deployment (ties break alphabetically)."""
        ceilings: Dict[str, int] = {
            "processor": self.cpu_users,
            "memory": self.memory_users,
            "network": self.network_users,
        }
        return min(ceilings, key=lambda k: (ceilings[k], k))

    def describe(self) -> str:
        """One-line human summary naming the binding constraint."""
        return (
            f"{self.os_name}/{self.profile_name}: {self.max_users} users "
            f"(limited by {self.limiting_resource}; "
            f"cpu={self.cpu_users}, mem={self.memory_users}, "
            f"net={self.network_users})"
        )


def plan_capacity(
    os_name: str,
    profile: BehaviorProfile,
    *,
    physical_bytes: int = mb(256),
    bandwidth_mbps: float = 10.0,
    cpu_count: int = 1,
    cpu_speed: float = 1.0,
    cpu_headroom: float = 0.7,
    network_utilization_cap: float = 0.8,
    session_variant: str = "typical",
) -> CapacityReport:
    """Max concurrent users of class *profile* on the given hardware.

    * **processor**: users' load must fit within ``cpu_headroom`` of the
      processors after the OS's compulsory idle load is deducted (beyond
      that, §4.2.2's stalls erase interactivity well before 100 %);
    * **memory**: the §5.1.1 per-login compulsory load plus the profile's
      dynamic working set must stay resident (§5.2's paging pathology);
    * **network**: aggregate display/input traffic must stay below the
      saturation knee of Figures 8–9.
    """
    if cpu_count < 1 or cpu_speed <= 0:
        raise ExperimentError("need at least one CPU of positive speed")
    if not 0 < cpu_headroom <= 1 or not 0 < network_utilization_cap <= 1:
        raise ExperimentError("headroom/caps must be in (0, 1]")

    # Processor dimension.
    compulsory = idle_profile(os_name).expected_busy(1000.0) / 1000.0
    usable_cpu = cpu_count * cpu_speed * cpu_headroom - compulsory
    if profile.cpu_load > 0:
        cpu_users = max(0, math.floor(usable_cpu / profile.cpu_load))
    else:
        cpu_users = 10**9

    # Memory dimension.
    memory_users = sessions_that_fit(
        os_name,
        physical_bytes,
        variant=session_variant,
        per_user_dynamic_bytes=profile.memory_bytes,
    )

    # Network dimension.
    usable_mbps = bandwidth_mbps * network_utilization_cap
    if profile.network_mbps > 0:
        network_users = max(0, math.floor(usable_mbps / profile.network_mbps))
    else:
        network_users = 10**9

    return CapacityReport(
        os_name=os_name,
        profile_name=profile.name,
        cpu_users=cpu_users,
        memory_users=memory_users,
        network_users=network_users,
    )


def blend_profiles(
    mix: Mapping[BehaviorProfile, float], name: str = "mixed"
) -> BehaviorProfile:
    """The weighted-average user of a population mix (Wang & Rubin, §4.1.2).

    "Two classes of users running different application mixes will consume
    resources at different per-user rates" — a deployment plans for its
    *population*, so the mix's expected per-user demand is what the
    capacity dimensions see.  Weights are normalized; they need not sum
    to 1.
    """
    if not mix:
        raise ExperimentError("empty profile mix")
    total_weight = float(sum(mix.values()))
    if total_weight <= 0 or any(w < 0 for w in mix.values()):
        raise ExperimentError("mix weights must be non-negative, sum > 0")
    cpu = sum(p.cpu_load * w for p, w in mix.items()) / total_weight
    memory = sum(p.memory_bytes * w for p, w in mix.items()) / total_weight
    network = sum(p.network_mbps * w for p, w in mix.items()) / total_weight
    rate = sum(p.interactions_per_sec * w for p, w in mix.items()) / total_weight
    return BehaviorProfile(
        name=name,
        cpu_load=cpu,
        memory_bytes=int(memory),
        network_mbps=network,
        interactions_per_sec=rate,
    )


def plan_mixed_capacity(
    os_name: str,
    mix: Mapping[BehaviorProfile, float],
    **kwargs,
) -> CapacityReport:
    """Capacity for a weighted population of user classes.

    Convenience wrapper: blends the mix into its expected per-user demand
    and plans as usual; the returned report's per-user ceilings are for
    the blended user.
    """
    return plan_capacity(os_name, blend_profiles(mix), **kwargs)
