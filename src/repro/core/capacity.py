"""Capacity planning: the question the paper says deployers actually ask.

"Ultimately, those interested in deploying interface services need to know
the maximum number of concurrent users their servers can support given some
hardware configuration, and what impact on users yields this maximum
value" (§3.1).

:func:`plan_capacity` answers it per resource and takes the minimum —
exposing *which* resource gates the deployment, the way the paper's
§6.1.3 does for the network ("if just five users open their browsers to a
page like this, the network link becomes saturated").

:func:`plan_fleet_capacity` generalizes the same arithmetic to a *fleet*
of identical servers behind a shared backbone link — the NC-farm sizing
question of Gray's *Locally Served Network Computers*: per-server ceilings
sum across the pool until the backbone's aggregate-traffic ceiling takes
over as the binding constraint.  The single-server planners are thin
wrappers over the fleet path (a one-server fleet with no backbone), so
their outputs are unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Tuple

from ..cpu.idle import idle_profile
from ..errors import ExperimentError
from ..memory.sessions import sessions_that_fit
from ..units import mb
from ..workloads.behavior import BehaviorProfile


@dataclass(frozen=True)
class CapacityReport:
    """Per-resource user ceilings and the binding constraint."""

    os_name: str
    profile_name: str
    cpu_users: int
    memory_users: int
    network_users: int

    @property
    def max_users(self) -> int:
        """The deployable user count: the smallest per-resource ceiling."""
        return min(self.cpu_users, self.memory_users, self.network_users)

    @property
    def limiting_resource(self) -> str:
        """Which resource gates the deployment (ties break alphabetically)."""
        ceilings: Dict[str, int] = {
            "processor": self.cpu_users,
            "memory": self.memory_users,
            "network": self.network_users,
        }
        return min(ceilings, key=lambda k: (ceilings[k], k))

    def describe(self) -> str:
        """One-line human summary naming the binding constraint."""
        return (
            f"{self.os_name}/{self.profile_name}: {self.max_users} users "
            f"(limited by {self.limiting_resource}; "
            f"cpu={self.cpu_users}, mem={self.memory_users}, "
            f"net={self.network_users})"
        )


@dataclass(frozen=True)
class FleetCapacityReport:
    """Capacity of N identical servers behind a shared backbone link.

    Per-server ceilings come from the single-server planner; the fleet
    adds one more dimension — the backbone that aggregates every session's
    display/input traffic on its way to the client population.  Below the
    backbone knee the fleet scales linearly with servers; above it, adding
    servers buys nothing (Gray's NC-farm economics in one inequality).
    """

    servers: Tuple[CapacityReport, ...]
    profile_name: str
    per_user_backbone_mbps: float
    backbone_mbps: Optional[float]  #: ``None`` = unconstrained backbone
    backbone_utilization_cap: float = 0.8

    #: Sentinel ceiling for dimensions a deployment cannot saturate.
    UNLIMITED = 10**9

    @property
    def num_servers(self) -> int:
        """How many servers the fleet composes."""
        return len(self.servers)

    @property
    def server_users(self) -> int:
        """Aggregate ceiling from the server pool alone (sum of per-server)."""
        return sum(report.max_users for report in self.servers)

    @property
    def backbone_users(self) -> int:
        """Ceiling from the shared backbone's usable bandwidth."""
        if self.backbone_mbps is None or self.per_user_backbone_mbps <= 0:
            return self.UNLIMITED
        usable = self.backbone_mbps * self.backbone_utilization_cap
        return max(0, math.floor(usable / self.per_user_backbone_mbps))

    @property
    def max_users(self) -> int:
        """The deployable fleet-wide user count (pool vs backbone minimum)."""
        return min(self.server_users, self.backbone_users)

    @property
    def limiting_resource(self) -> str:
        """What gates the fleet: ``"backbone"`` or a per-server resource."""
        if self.backbone_users < self.server_users:
            return "backbone"
        return self.servers[0].limiting_resource

    @property
    def backbone_headroom(self) -> float:
        """Unused fraction of usable backbone capacity at ``max_users``."""
        if self.backbone_mbps is None or self.per_user_backbone_mbps <= 0:
            return 1.0
        usable = self.backbone_mbps * self.backbone_utilization_cap
        used = self.max_users * self.per_user_backbone_mbps
        return max(0.0, min(1.0, 1.0 - used / usable))

    def describe(self) -> str:
        """One-line human summary naming the binding constraint."""
        per_server = self.servers[0].max_users if self.servers else 0
        return (
            f"{self.num_servers}x {self.profile_name}: {self.max_users} users "
            f"(limited by {self.limiting_resource}; "
            f"servers={self.server_users} [{per_server}/server], "
            f"backbone={'inf' if self.backbone_users >= self.UNLIMITED else self.backbone_users}, "
            f"backbone headroom={self.backbone_headroom * 100:.0f}%)"
        )


def plan_capacity(
    os_name: str,
    profile: BehaviorProfile,
    *,
    physical_bytes: int = mb(256),
    bandwidth_mbps: float = 10.0,
    cpu_count: int = 1,
    cpu_speed: float = 1.0,
    cpu_headroom: float = 0.7,
    network_utilization_cap: float = 0.8,
    session_variant: str = "typical",
) -> CapacityReport:
    """Max concurrent users of class *profile* on the given hardware.

    * **processor**: users' load must fit within ``cpu_headroom`` of the
      processors after the OS's compulsory idle load is deducted (beyond
      that, §4.2.2's stalls erase interactivity well before 100 %);
    * **memory**: the §5.1.1 per-login compulsory load plus the profile's
      dynamic working set must stay resident (§5.2's paging pathology);
    * **network**: aggregate display/input traffic must stay below the
      saturation knee of Figures 8–9.

    A thin wrapper over :func:`plan_fleet_capacity` with one server and no
    backbone; the report is byte-for-byte what the pre-fleet planner
    produced.
    """
    fleet = plan_fleet_capacity(
        os_name,
        profile,
        num_servers=1,
        backbone_mbps=None,
        physical_bytes=physical_bytes,
        bandwidth_mbps=bandwidth_mbps,
        cpu_count=cpu_count,
        cpu_speed=cpu_speed,
        cpu_headroom=cpu_headroom,
        network_utilization_cap=network_utilization_cap,
        session_variant=session_variant,
    )
    return fleet.servers[0]


def plan_fleet_capacity(
    os_name: str,
    profile: BehaviorProfile,
    *,
    num_servers: int = 1,
    backbone_mbps: Optional[float] = None,
    backbone_utilization_cap: float = 0.8,
    physical_bytes: int = mb(256),
    bandwidth_mbps: float = 10.0,
    cpu_count: int = 1,
    cpu_speed: float = 1.0,
    cpu_headroom: float = 0.7,
    network_utilization_cap: float = 0.8,
    session_variant: str = "typical",
) -> FleetCapacityReport:
    """Capacity of ``num_servers`` identical servers sharing a backbone.

    Per-server dimensions are exactly :func:`plan_capacity`'s; the fleet
    adds the backbone dimension (``backbone_mbps`` of shared aggregate
    bandwidth, ``None`` for unconstrained) that every session's traffic
    crosses regardless of which server hosts it.
    """
    if num_servers < 1:
        raise ExperimentError("a fleet needs at least one server")
    if backbone_mbps is not None and backbone_mbps <= 0:
        raise ExperimentError("backbone bandwidth must be positive")
    if not 0 < backbone_utilization_cap <= 1:
        raise ExperimentError("backbone utilization cap must be in (0, 1]")
    server = _plan_server_capacity(
        os_name,
        profile,
        physical_bytes=physical_bytes,
        bandwidth_mbps=bandwidth_mbps,
        cpu_count=cpu_count,
        cpu_speed=cpu_speed,
        cpu_headroom=cpu_headroom,
        network_utilization_cap=network_utilization_cap,
        session_variant=session_variant,
    )
    return FleetCapacityReport(
        servers=(server,) * num_servers,
        profile_name=profile.name,
        per_user_backbone_mbps=profile.network_mbps,
        backbone_mbps=backbone_mbps,
        backbone_utilization_cap=backbone_utilization_cap,
    )


def _plan_server_capacity(
    os_name: str,
    profile: BehaviorProfile,
    *,
    physical_bytes: int,
    bandwidth_mbps: float,
    cpu_count: int,
    cpu_speed: float,
    cpu_headroom: float,
    network_utilization_cap: float,
    session_variant: str,
) -> CapacityReport:
    """The per-server arithmetic (the pre-fleet ``plan_capacity`` body)."""
    if cpu_count < 1 or cpu_speed <= 0:
        raise ExperimentError("need at least one CPU of positive speed")
    if not 0 < cpu_headroom <= 1 or not 0 < network_utilization_cap <= 1:
        raise ExperimentError("headroom/caps must be in (0, 1]")

    # Processor dimension.
    compulsory = idle_profile(os_name).expected_busy(1000.0) / 1000.0
    usable_cpu = cpu_count * cpu_speed * cpu_headroom - compulsory
    if profile.cpu_load > 0:
        cpu_users = max(0, math.floor(usable_cpu / profile.cpu_load))
    else:
        cpu_users = 10**9

    # Memory dimension.
    memory_users = sessions_that_fit(
        os_name,
        physical_bytes,
        variant=session_variant,
        per_user_dynamic_bytes=profile.memory_bytes,
    )

    # Network dimension.
    usable_mbps = bandwidth_mbps * network_utilization_cap
    if profile.network_mbps > 0:
        network_users = max(0, math.floor(usable_mbps / profile.network_mbps))
    else:
        network_users = 10**9

    return CapacityReport(
        os_name=os_name,
        profile_name=profile.name,
        cpu_users=cpu_users,
        memory_users=memory_users,
        network_users=network_users,
    )


def blend_profiles(
    mix: Mapping[BehaviorProfile, float], name: str = "mixed"
) -> BehaviorProfile:
    """The weighted-average user of a population mix (Wang & Rubin, §4.1.2).

    "Two classes of users running different application mixes will consume
    resources at different per-user rates" — a deployment plans for its
    *population*, so the mix's expected per-user demand is what the
    capacity dimensions see.  Weights are normalized; they need not sum
    to 1.
    """
    if not mix:
        raise ExperimentError("empty profile mix")
    total_weight = float(sum(mix.values()))
    if total_weight <= 0 or any(w < 0 for w in mix.values()):
        raise ExperimentError("mix weights must be non-negative, sum > 0")
    cpu = sum(p.cpu_load * w for p, w in mix.items()) / total_weight
    memory = sum(p.memory_bytes * w for p, w in mix.items()) / total_weight
    network = sum(p.network_mbps * w for p, w in mix.items()) / total_weight
    rate = sum(p.interactions_per_sec * w for p, w in mix.items()) / total_weight
    return BehaviorProfile(
        name=name,
        cpu_load=cpu,
        memory_bytes=int(memory),
        network_mbps=network,
        interactions_per_sec=rate,
    )


def plan_mixed_capacity(
    os_name: str,
    mix: Mapping[BehaviorProfile, float],
    **kwargs,
) -> CapacityReport:
    """Capacity for a weighted population of user classes.

    Convenience wrapper: blends the mix into its expected per-user demand
    and plans as usual; the returned report's per-user ceilings are for
    the blended user.
    """
    return plan_capacity(os_name, blend_profiles(mix), **kwargs)


def plan_mixed_fleet_capacity(
    os_name: str,
    mix: Mapping[BehaviorProfile, float],
    **kwargs,
) -> FleetCapacityReport:
    """Fleet capacity for a weighted population of user classes.

    The fleet analogue of :func:`plan_mixed_capacity`: blends the mix and
    delegates to :func:`plan_fleet_capacity` (same keyword surface).
    """
    return plan_fleet_capacity(os_name, blend_profiles(mix), **kwargs)
