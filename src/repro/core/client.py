"""The thin client endpoint.

The client is deliberately thin: it forwards input events and renders the
display messages the server sends.  What it *measures* is the quantity the
paper is about — the wall-clock gap between the user's input and the
display update that answers it (user-perceived latency).
"""

from __future__ import annotations

from typing import List, Optional

from ..net.tcpstream import Message
from ..sim.engine import Simulator
from .latency import LatencyAssessment, assess


class ThinClient:
    """Records user-perceived latency for one session's interactions."""

    def __init__(self, sim: Simulator, name: str = "client") -> None:
        self.sim = sim
        self.name = name
        self.latencies_ms: List[float] = []
        self.display_messages_received = 0
        self.display_bytes_received = 0
        self._pending_input_time: Optional[float] = None

    def input_sent(self) -> None:
        """The user produced an input the display must answer."""
        if self._pending_input_time is None:
            self._pending_input_time = self.sim.now

    def display_received(self, message: Message) -> None:
        """A display message arrived; closes the oldest pending input."""
        self.display_messages_received += 1
        self.display_bytes_received += message.payload_bytes
        if self._pending_input_time is not None:
            self.latencies_ms.append(self.sim.now - self._pending_input_time)
            self._pending_input_time = None

    def assessment(self, threshold_ms: float = 100.0) -> LatencyAssessment:
        """The paper's three-way latency quality measure for this client."""
        return assess(self.latencies_ms, threshold_ms)
