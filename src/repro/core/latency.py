"""Latency metrics: perception thresholds, stalls, jitter (§3.2).

"Previous work has found that tolerable levels of latency vary with the
nature of the operation.  For example, latency tolerances for continuous
operations are lower than for discrete operations, and humans are generally
irritated by latencies 100ms or greater.  Jitter, or an inconsistent level
of latency, is also considered harmful."

The paper identifies three ways a system degrades with respect to latency
(§3.2); :class:`LatencyAssessment` quantifies all three for a series of
operation latencies:

1. how far individual operations rise above the perception threshold;
2. how many operations induce perceptible latency;
3. how unpredictable the latency is (jitter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ExperimentError
from ..sim.stats import Summary, mean, stddev

#: "humans are generally irritated by latencies 100ms or greater" (§3.2).
PERCEPTION_THRESHOLD_MS = 100.0

#: Continuous operations (dragging, scrolling, typing echo) have tighter
#: tolerances than discrete ones (§3.2, MacKenzie & Ware).
CONTINUOUS_THRESHOLD_MS = 50.0
DISCRETE_THRESHOLD_MS = 100.0


def threshold_for(operation_kind: str) -> float:
    """The tolerance for ``"continuous"`` or ``"discrete"`` operations."""
    if operation_kind == "continuous":
        return CONTINUOUS_THRESHOLD_MS
    if operation_kind == "discrete":
        return DISCRETE_THRESHOLD_MS
    raise ExperimentError(
        f"unknown operation kind {operation_kind!r}; "
        "expected 'continuous' or 'discrete'"
    )


@dataclass(frozen=True)
class LatencyAssessment:
    """The paper's three-way latency quality measure for one op series."""

    threshold_ms: float
    summary: Summary
    #: (1) worst-case excess over the perception threshold, as a multiple.
    worst_case_factor: float
    #: (2) fraction of operations with perceptible latency.
    perceptible_fraction: float
    #: (3) jitter: standard deviation of the latency series.
    jitter_ms: float

    @property
    def acceptable(self) -> bool:
        """A 'good' system: no perceptible ops (hence no perceptible jitter)."""
        return self.perceptible_fraction == 0.0

    def describe(self) -> str:
        """One-line summary of all three degradation measures."""
        return (
            f"worst {self.worst_case_factor:.1f}x threshold, "
            f"{self.perceptible_fraction * 100:.1f}% perceptible, "
            f"jitter {self.jitter_ms:.1f}ms"
        )


def assess(
    latencies_ms: Sequence[float],
    threshold_ms: float = PERCEPTION_THRESHOLD_MS,
) -> LatencyAssessment:
    """Assess an operation-latency series against a perception threshold."""
    if not latencies_ms:
        raise ExperimentError("cannot assess an empty latency series")
    if threshold_ms <= 0:
        raise ExperimentError("threshold must be positive")
    perceptible = [l for l in latencies_ms if l >= threshold_ms]
    return LatencyAssessment(
        threshold_ms=threshold_ms,
        summary=Summary.of(list(latencies_ms)),
        worst_case_factor=max(latencies_ms) / threshold_ms,
        perceptible_fraction=len(perceptible) / len(latencies_ms),
        jitter_ms=stddev(latencies_ms) if len(latencies_ms) > 1 else 0.0,
    )
