"""The experiment registry: named, grouped, runnable reproductions.

Experiments used to be hand-wired into ``cli.py``'s dispatch table; adding
one meant editing the CLI.  The registry inverts that: an experiment
registers *itself* with the :func:`experiment` decorator::

    from repro.core.registry import experiment

    @experiment("fleet_capacity", group="fleet",
                title="Sessions per server vs fleet size")
    def _fleet_capacity(ctx):
        ...

and every registry consumer — ``repro list``, ``repro run``, ``repro
trace``, ``run all`` — picks it up without a CLI change.  Third-party and
fleet experiments therefore register exactly like the paper's figures do.

Two ordering contracts keep historical artifacts stable:

* **Run order is registration order.**  ``run all`` iterates the registry
  in insertion order, so the paper experiments keep the exact sequence the
  pre-registry CLI hard-coded (goldens and cache keys are unchanged);
  later registrations append after them.
* **Groups are display-only.**  ``repro list`` renders one table per
  group (groups ordered by first registration), but grouping never
  reorders execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ExperimentError


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: id, human title, display group, runner.

    ``run`` receives a single :class:`~repro.exec.RunContext` carrying the
    seed, output stream, CSV directory, and execution policy.
    """

    name: str
    title: str
    group: str
    run: Callable


#: The live registry, in registration order.  ``repro run all`` iterates
#: this mapping directly; mutate it only through :func:`register` /
#: :func:`unregister`.
REGISTRY: Dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add *spec* to the registry; duplicate names are a hard error."""
    if spec.name in REGISTRY:
        raise ExperimentError(
            f"experiment {spec.name!r} is already registered "
            f"(group {REGISTRY[spec.name].group!r})"
        )
    REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove one experiment (registration-order of the rest is kept)."""
    if name not in REGISTRY:
        raise ExperimentError(f"experiment {name!r} is not registered")
    del REGISTRY[name]


def experiment(
    name: str, *, title: str, group: str = "paper"
) -> Callable[[Callable], Callable]:
    """Class-free registration decorator; returns the runner unchanged.

    ``group`` labels the ``repro list`` section the experiment appears
    under; it never affects run order.
    """

    def decorate(fn: Callable) -> Callable:
        register(ExperimentSpec(name=name, title=title, group=group, run=fn))
        return fn

    return decorate


def get(name: str) -> Optional[ExperimentSpec]:
    """The spec registered under *name*, or ``None``."""
    return REGISTRY.get(name)


def names() -> List[str]:
    """All experiment ids, in registration (= ``run all``) order."""
    return list(REGISTRY)


def specs() -> List[ExperimentSpec]:
    """All registered specs, in registration order."""
    return list(REGISTRY.values())


def groups() -> Dict[str, List[ExperimentSpec]]:
    """Specs bucketed by group, groups ordered by first registration.

    Within a group, specs keep registration order — the same order
    ``run all`` executes them in.
    """
    grouped: Dict[str, List[ExperimentSpec]] = {}
    for spec in REGISTRY.values():
        grouped.setdefault(spec.group, []).append(spec)
    return grouped
