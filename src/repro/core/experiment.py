"""A small parameter-sweep harness shared by benches and examples.

Every figure in the paper is a sweep: stall length *vs* queue depth, RTT
*vs* offered load, bandwidth *vs* frame count.  :class:`ParameterSweep`
standardizes the bookkeeping: named parameter, values, a run function, and
a results table keyed by parameter value.

Execution is delegated to :class:`repro.exec.SweepExecutor` when one is
supplied — giving any sweep process-parallel fan-out and on-disk result
caching — and stays plain serial otherwise, preserving the historical
behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from ..errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..exec.executor import SweepExecutor

P = TypeVar("P")
R = TypeVar("R")


@dataclass
class SweepResult(Generic[P, R]):
    """All (parameter, result) rows of one sweep.

    Lookups by parameter value go through a dict index maintained on
    :meth:`append`; rows mutated behind the dataclass's back (appending to
    ``rows`` directly) are re-indexed lazily, so :meth:`result_for` stays
    O(1) without changing the historical list-of-tuples surface.
    """

    name: str
    parameter: str
    rows: List[Tuple[P, R]] = field(default_factory=list)
    _index: Dict[Any, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _indexed: int = field(default=0, init=False, repr=False, compare=False)

    def append(self, value: P, result: R) -> None:
        """Record one (parameter, result) row, keeping the index current."""
        self.rows.append((value, result))
        self._reindex()

    def values(self) -> List[P]:
        """The swept parameter values, in run order."""
        return [p for p, __ in self.rows]

    def results(self) -> List[R]:
        """The per-value results, aligned with :meth:`values`."""
        return [r for __, r in self.rows]

    def series(self, extract: Callable[[R], float]) -> Tuple[List[P], List[float]]:
        """(parameter values, extracted metric) — a figure's two axes."""
        return self.values(), [extract(r) for r in self.results()]

    def result_for(self, value: P) -> R:
        """The result recorded for one parameter value (first row wins)."""
        if self._indexed != len(self.rows):
            self._reindex()
        try:
            position = self._index.get(value)
        except TypeError:  # unhashable parameter value — fall back to scan
            position = None
            for p, r in self.rows:
                if p == value:
                    return r
        if position is not None:
            return self.rows[position][1]
        raise ExperimentError(
            f"sweep {self.name!r} has no row for {self.parameter}={value!r}"
        )

    def _reindex(self) -> None:
        """Index any rows appended since the last lookup/append."""
        for position in range(self._indexed, len(self.rows)):
            value = self.rows[position][0]
            try:
                self._index.setdefault(value, position)
            except TypeError:
                pass  # unhashable values stay on the linear-scan path
        self._indexed = len(self.rows)


class ParameterSweep(Generic[P, R]):
    """Run one experiment function across a parameter range.

    Satisfies :class:`repro.core.framework.Runnable`: ``run(value)``
    computes one point, and an executor can fan those points out.
    """

    def __init__(
        self,
        name: str,
        parameter: str,
        run: Callable[[P], R],
    ) -> None:
        self.name = name
        self.parameter = parameter
        self.run = run

    def execute(
        self,
        values: Sequence[P],
        *,
        executor: Optional["SweepExecutor"] = None,
        seed: int = 0,
    ) -> SweepResult[P, R]:
        """Run the experiment at every value; returns the result table.

        With no *executor* this is the historical serial loop.  Passing a
        :class:`repro.exec.SweepExecutor` routes the same points through
        its backend and cache; the resulting rows are identical either way
        (*seed* only participates in cache keying — the run function itself
        owns its seeding).
        """
        if not values:
            raise ExperimentError(f"sweep {self.name!r} given no values")
        if executor is not None:
            return executor.run_sweep(self, values, seed=seed)
        result: SweepResult[P, R] = SweepResult(self.name, self.parameter)
        for value in values:
            result.append(value, self.run(value))
        return result
