"""A small parameter-sweep harness shared by benches and examples.

Every figure in the paper is a sweep: stall length *vs* queue depth, RTT
*vs* offered load, bandwidth *vs* frame count.  :class:`ParameterSweep`
standardizes the bookkeeping: named parameter, values, a run function, and
a results table keyed by parameter value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Generic, List, Sequence, Tuple, TypeVar

from ..errors import ExperimentError

P = TypeVar("P")
R = TypeVar("R")


@dataclass
class SweepResult(Generic[P, R]):
    """All (parameter, result) rows of one sweep."""

    name: str
    parameter: str
    rows: List[Tuple[P, R]] = field(default_factory=list)

    def values(self) -> List[P]:
        """The swept parameter values, in run order."""
        return [p for p, __ in self.rows]

    def results(self) -> List[R]:
        """The per-value results, aligned with :meth:`values`."""
        return [r for __, r in self.rows]

    def series(self, extract: Callable[[R], float]) -> Tuple[List[P], List[float]]:
        """(parameter values, extracted metric) — a figure's two axes."""
        return self.values(), [extract(r) for r in self.results()]

    def result_for(self, value: P) -> R:
        """The result recorded for one parameter value."""
        for p, r in self.rows:
            if p == value:
                return r
        raise ExperimentError(
            f"sweep {self.name!r} has no row for {self.parameter}={value!r}"
        )


class ParameterSweep(Generic[P, R]):
    """Run one experiment function across a parameter range."""

    def __init__(
        self,
        name: str,
        parameter: str,
        run: Callable[[P], R],
    ) -> None:
        self.name = name
        self.parameter = parameter
        self.run = run

    def execute(self, values: Sequence[P]) -> SweepResult[P, R]:
        """Run the experiment at every value; returns the result table."""
        if not values:
            raise ExperimentError(f"sweep {self.name!r} given no values")
        result: SweepResult[P, R] = SweepResult(self.name, self.parameter)
        for value in values:
            result.rows.append((value, self.run(value)))
        return result
