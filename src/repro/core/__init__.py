"""The paper's contribution: latency framework, server composition, tools."""

from .capacity import (
    CapacityReport,
    FleetCapacityReport,
    blend_profiles,
    plan_capacity,
    plan_fleet_capacity,
    plan_mixed_capacity,
    plan_mixed_fleet_capacity,
)
from .client import ThinClient
from .experiment import ParameterSweep, SweepResult
from .framework import (
    LoadKind,
    LoadProfile,
    LoadSource,
    Resource,
    ResourceStudy,
    Runnable,
    StudyResult,
    compare,
    evaluate,
)
from .latency import (
    CONTINUOUS_THRESHOLD_MS,
    DISCRETE_THRESHOLD_MS,
    PERCEPTION_THRESHOLD_MS,
    LatencyAssessment,
    assess,
    threshold_for,
)
from .registry import ExperimentSpec, experiment
from .report import format_series, format_table, sparkline
from .server import ServerConfig, ThinClientServer, UserSession

__all__ = [
    "CONTINUOUS_THRESHOLD_MS",
    "CapacityReport",
    "DISCRETE_THRESHOLD_MS",
    "ExperimentSpec",
    "FleetCapacityReport",
    "LatencyAssessment",
    "LoadKind",
    "LoadProfile",
    "LoadSource",
    "PERCEPTION_THRESHOLD_MS",
    "ParameterSweep",
    "Resource",
    "ResourceStudy",
    "Runnable",
    "ServerConfig",
    "StudyResult",
    "SweepResult",
    "ThinClient",
    "ThinClientServer",
    "UserSession",
    "assess",
    "blend_profiles",
    "compare",
    "evaluate",
    "experiment",
    "format_series",
    "format_table",
    "plan_capacity",
    "plan_fleet_capacity",
    "plan_mixed_capacity",
    "plan_mixed_fleet_capacity",
    "sparkline",
    "threshold_for",
]
