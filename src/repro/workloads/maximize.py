"""The window-maximize operation and the boost-grace analysis (§4.2.1).

Endo et al. measured a typical user operation — maximizing a window — at
approximately **500 ms** of processing on a 100 MHz Pentium with no
competing activity.  The paper's analysis: NT's GUI wake-up boost protects
an interactive operation only while the boosted "grace period" lasts —
two (possibly stretched) quanta, at most 180 ms — so the maximize operation
outlives its boost and then starves behind priority-13 service threads;
a processor 2.5–5.5× faster brings the operation under the 180 ms / 90 ms
thresholds and eliminates the latency *with no scheduler change*.

:func:`run_maximize_experiment` measures the wall-clock completion of the
maximize operation against competing activity at a given CPU speed,
reproducing both the 900 ms worst case of the paper's narrative and the
speed thresholds (``benchmarks/test_abl_boost_grace.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cpu.cpusim import CPU
from ..cpu.nt import NTConfig, NTScheduler
from ..cpu.thread import Burst, Thread
from ..errors import WorkloadError
from ..sim.engine import Simulator

#: Endo et al.: the maximize operation on the reference 100 MHz Pentium.
MAXIMIZE_DEMAND_MS = 500.0
#: The competing priority-13 event of the paper's worked example.
SERVICE_EVENT_MS = 400.0
SERVICE_PRIORITY = 13


@dataclass
class MaximizeResult:
    """Wall-clock completion of one maximize under competition."""

    cpu_speed: float
    completion_ms: float
    demand_ms: float

    @property
    def added_latency_ms(self) -> float:
        """Latency beyond the operation's own (speed-scaled) demand."""
        return self.completion_ms - self.demand_ms / self.cpu_speed


def run_maximize_experiment(
    *,
    cpu_speed: float = 1.0,
    config: Optional[NTConfig] = None,
    service_event_ms: float = SERVICE_EVENT_MS,
    service_delay_ms: float = 10.0,
) -> MaximizeResult:
    """Maximize a window while a priority-13 service event fires.

    The GUI thread wakes (boosted to 15 for two quanta) to process the
    maximize; ``service_delay_ms`` later, a Session-Manager-style event of
    ``service_event_ms`` arrives at priority 13.  If the maximize outlives
    its boost grace, it drops to base 9 and waits out the service event —
    the paper's 500 ms + 400 ms = 900 ms scenario.
    """
    if cpu_speed <= 0:
        raise WorkloadError("cpu speed must be positive")
    sim = Simulator()
    cpu = CPU(sim, NTScheduler(config or NTConfig.workstation()), speed=cpu_speed)

    service = Thread("session-manager", base_priority=SERVICE_PRIORITY)
    cpu.add_thread(service)

    gui = Thread("window-manager", gui=True, foreground=True)
    cpu.add_thread(gui)

    completions = []
    cpu.submit(gui, Burst(MAXIMIZE_DEMAND_MS, on_complete=completions.append))
    sim.schedule(
        service_delay_ms,
        lambda: cpu.submit(service, Burst(service_event_ms)),
    )
    sim.run_until(60_000.0)
    if not completions:
        raise WorkloadError("maximize never completed; experiment too short")
    return MaximizeResult(
        cpu_speed=cpu_speed,
        completion_ms=completions[0],
        demand_ms=MAXIMIZE_DEMAND_MS,
    )
