"""Animated user-interface workloads (§6.1.3, Figures 4–7).

"Perhaps the most visible user application trend over recent years has been
the increasing richness and sophistication of graphical interfaces ...
animations often run asynchronously of user interaction."  This module
builds the paper's animation scenarios:

* the 10-frame, 20 Hz GIF displayed over X, LBX, and RDP (Figure 5);
* the synthetic web page "modeled after http://www.msnbc.com/" with an
  animated 468x60 banner advertisement and a scrolling news ticker
  (Figure 4) — whose combined frame sets overflow the client's 1.5 MB
  bitmap cache while each alone fits, producing the paper's dramatic
  non-linearity;
* the cache-overflow study (Figure 6: a 66-frame looping animation) and
  the frame-count sweep with the cliff above 65 frames (Figure 7).

Frame geometry and compression are calibrated so a banner-class frame
caches at 23,868 bytes — exactly 65 of them fit in the 1.5 MB cache, the
paper's measured cliff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..gui.drawing import Bitmap, DrawBitmap
from ..net.framing import TCPIP, wire_bytes
from ..protocols import RDPProtocol, RemoteDisplayProtocol, make_protocol
from ..sim.engine import Simulator
from ..sim.trace import ByteTrace, TimeSeries


@dataclass(frozen=True)
class AnimationSpec:
    """One animated element: geometry, frame set, and timing."""

    name: str
    width: int
    height: int
    bpp: int
    compressed_ratio: float  #: GIF/RLE compressibility of a frame
    frame_count: int
    frame_interval_ms: float
    loop: bool = True
    fresh_frames_per_cycle: int = 0  #: frames with new content each cycle
    pause_ms: float = 0.0  #: idle gap between cycles (ticker rewind)

    def __post_init__(self) -> None:
        if self.frame_count <= 0:
            raise WorkloadError("animation needs at least one frame")
        if self.frame_interval_ms <= 0:
            raise WorkloadError("frame interval must be positive")
        if self.fresh_frames_per_cycle > self.frame_count:
            raise WorkloadError("more fresh frames than frames")

    def frame_bitmap(self, index: int, cycle: int) -> Bitmap:
        """The bitmap for frame *index* of loop iteration *cycle*.

        The first ``fresh_frames_per_cycle`` frame slots carry new content
        each cycle (new bitmap ids — a ticker's updated headlines); the
        rest repeat across cycles and are cacheable.
        """
        if not 0 <= index < self.frame_count:
            raise WorkloadError(f"frame {index} out of range")
        if index < self.fresh_frames_per_cycle:
            bitmap_id = f"{self.name}:c{cycle}:f{index}"
        else:
            bitmap_id = f"{self.name}:f{index}"
        return Bitmap(
            bitmap_id=bitmap_id,
            width=self.width,
            height=self.height,
            bpp=self.bpp,
            compressed_ratio=self.compressed_ratio,
        )

    @property
    def frame_cached_bytes(self) -> int:
        """Bytes one frame occupies in a client bitmap cache."""
        return self.frame_bitmap(self.frame_count - 1, 0).compressed_bytes

    @property
    def cycle_ms(self) -> float:
        """Wall time of one loop iteration including the pause."""
        return self.frame_count * self.frame_interval_ms + self.pause_ms


def banner_ad(frame_count: int = 15, frame_interval_ms: float = 400.0) -> AnimationSpec:
    """The animated 468x60 GIF banner advertisement of Figure 4."""
    return AnimationSpec(
        name="banner",
        width=468,
        height=60,
        bpp=8,
        compressed_ratio=0.85,
        frame_count=frame_count,
        frame_interval_ms=frame_interval_ms,
    )


def marquee(
    phases: int = 65,
    frame_interval_ms: float = 100.0,
    fresh_frames_per_cycle: int = 2,
    pause_ms: float = 2000.0,
) -> AnimationSpec:
    """The scrolling HTML news ticker of Figure 4.

    Each scroll phase redraws the ticker strip; the cycle pauses before
    rewinding (the periodicity visible in the paper's Figure 4 trace), and
    a few phases per cycle carry fresh headline content.

    Geometry calibration: the phase set alone (~1.40 MB) fits the 1.5 MB
    client cache, but with the banner's frames added the combined set
    overflows it; once thrashing, marquee misses insert bytes fast enough
    that the LRU reuse window stays *shorter* than both elements'
    re-reference periods, so the thrashing is self-sustaining — the
    paper's non-linearity.
    """
    return AnimationSpec(
        name="marquee",
        width=600,
        height=40,
        bpp=8,
        compressed_ratio=0.9,
        frame_count=phases,
        frame_interval_ms=frame_interval_ms,
        fresh_frames_per_cycle=fresh_frames_per_cycle,
        pause_ms=pause_ms,
    )


def gif_10_frame(frame_interval_ms: float = 50.0) -> AnimationSpec:
    """Figure 5's GIF: 10 frames at a 50 ms delay (20 Hz)."""
    return AnimationSpec(
        name="gif10",
        width=468,
        height=60,
        bpp=4,
        compressed_ratio=1.0,
        frame_count=10,
        frame_interval_ms=frame_interval_ms,
    )


def dateline_animation(frame_count: int) -> AnimationSpec:
    """Figure 7's 'Dateline NBC' animation at a given frame count (5 fps)."""
    return AnimationSpec(
        name=f"dateline{frame_count}",
        width=468,
        height=60,
        bpp=8,
        compressed_ratio=0.85,
        frame_count=frame_count,
        frame_interval_ms=200.0,
    )


class DisplayLoadRecorder:
    """Feeds display steps to a protocol and records wire bytes over time."""

    def __init__(self, sim: Simulator, protocol: RemoteDisplayProtocol) -> None:
        self.sim = sim
        self.protocol = protocol
        self.trace = ByteTrace(protocol.name)
        self.messages = 0
        self.encode_cpu_ms = 0.0

    def display(self, ops: Sequence) -> None:
        """Encode one step's ops and record their wire bytes now."""
        messages = self.protocol.encode_display_step(ops)
        self.messages += len(messages)
        self.encode_cpu_ms += self.protocol.encode_cost_ms(messages)
        for message in messages:
            self.trace.record(self.sim.now, wire_bytes(message.payload_bytes, TCPIP))


class AnimationPlayer:
    """Plays an :class:`AnimationSpec`, emitting one DrawBitmap per frame."""

    def __init__(
        self,
        sim: Simulator,
        spec: AnimationSpec,
        on_frame: Callable[[DrawBitmap], None],
        *,
        start_ms: float = 0.0,
    ) -> None:
        self.sim = sim
        self.spec = spec
        self.on_frame = on_frame
        self.frames_shown = 0
        self._index = 0
        self._cycle = 0
        self._stopped = False
        self._event = sim.schedule(start_ms, self._show_frame)

    def _show_frame(self) -> None:
        if self._stopped:
            return
        bitmap = self.spec.frame_bitmap(self._index, self._cycle)
        self.on_frame(DrawBitmap(bitmap))
        self.frames_shown += 1
        self._index += 1
        delay = self.spec.frame_interval_ms
        if self._index >= self.spec.frame_count:
            if not self.spec.loop:
                return
            self._index = 0
            self._cycle += 1
            delay += self.spec.pause_ms
        self._event = self.sim.schedule(delay, self._show_frame)

    def stop(self) -> None:
        """Halt playback."""
        self._stopped = True
        self._event.cancel()


@dataclass
class AnimationRunResult:
    """A recorded animation run over one protocol."""

    protocol: str
    duration_ms: float
    trace: ByteTrace
    messages: int
    frames_shown: int
    cache_hit_ratio: Optional[float] = None

    def load_series(self, window_ms: float) -> Tuple[List[float], List[float]]:
        """Windowed Mbps over the whole run (a figure's series)."""
        return self.trace.load_series(0.0, self.duration_ms, window_ms)

    def average_mbps(self, t0: float = 0.0, t1: Optional[float] = None) -> float:
        """Mean load over a window (defaults to the whole run)."""
        return self.trace.average_mbps(t0, self.duration_ms if t1 is None else t1)


def run_animations_over_protocol(
    protocol_name: str,
    specs: Sequence[AnimationSpec],
    duration_ms: float,
) -> AnimationRunResult:
    """Play *specs* concurrently over a fresh protocol session.

    Returns the wire-byte trace, from which Figures 4, 5, and 7 read their
    load series.
    """
    if duration_ms <= 0:
        raise WorkloadError("duration must be positive")
    sim = Simulator()
    protocol = make_protocol(protocol_name)
    recorder = DisplayLoadRecorder(sim, protocol)
    players = [
        AnimationPlayer(sim, spec, lambda op: recorder.display([op]))
        for spec in specs
    ]
    sim.run_until(duration_ms)
    for player in players:
        player.stop()
    hit_ratio = None
    if isinstance(protocol, RDPProtocol):
        hit_ratio = protocol.cache.stats.cumulative_hit_ratio
    return AnimationRunResult(
        protocol=protocol_name,
        duration_ms=duration_ms,
        trace=recorder.trace,
        messages=recorder.messages,
        frames_shown=sum(p.frames_shown for p in players),
        cache_hit_ratio=hit_ratio,
    )


# --- Figure 4: the synthetic MSNBC-style web page ---------------------------

FIG4_VARIANTS = ("both", "marquee", "banner")


def run_webpage_experiment(
    variant: str, duration_ms: float = 160_000.0
) -> AnimationRunResult:
    """Figure 4: the synthetic web page over RDP.

    ``variant`` selects "marquee", "banner", or "both".  Each element's
    frame set alone fits the 1.5 MB client cache; together they overflow
    it, and network load rises non-linearly (§6.1.3).
    """
    if variant not in FIG4_VARIANTS:
        raise WorkloadError(
            f"unknown variant {variant!r}; expected one of {FIG4_VARIANTS}"
        )
    specs: List[AnimationSpec] = []
    if variant in ("both", "marquee"):
        specs.append(marquee())
    if variant in ("both", "banner"):
        specs.append(banner_ad())
    return run_animations_over_protocol("rdp", specs, duration_ms)


# --- Figure 5: one GIF over X, LBX, and RDP ---------------------------------

def run_gif_protocol_comparison(
    duration_ms: float = 5_000.0,
) -> Dict[str, AnimationRunResult]:
    """Figure 5: the 10-frame 20 Hz GIF over each protocol."""
    return {
        name: run_animations_over_protocol(name, [gif_10_frame()], duration_ms)
        for name in ("x", "lbx", "rdp")
    }


# --- Figure 6: cache overflow — hit ratio and CPU utilization ----------------

@dataclass
class CacheOverflowResult:
    """Figure 6's two series plus the underlying counters."""

    times_ms: List[float]
    cpu_utilization: List[float]
    cumulative_hit_ratio: List[float]
    final_hit_ratio: float


def run_cache_overflow_experiment(
    frame_count: int = 66,
    duration_ms: float = 60_000.0,
    *,
    warmup_ui_ms: float = 5_000.0,
    window_ms: float = 1_000.0,
) -> CacheOverflowResult:
    """Figure 6: a looping animation one frame too big for the cache.

    The session first paints ordinary UI (icons and buttons that re-draw
    and *hit*, which is why the cumulative ratio starts high), then the
    66-frame loop starts and every frame access misses: the cumulative
    ratio "falls asymptotically toward zero with each subsequent miss"
    while the server CPU stays busy re-sending frames.
    """
    sim = Simulator()
    protocol = RDPProtocol()
    recorder = DisplayLoadRecorder(sim, protocol)

    # Warmup UI: a rotation of small cacheable icons, re-drawn often.
    icons = [
        Bitmap(f"icon{i}", 32, 32, 8, compressed_ratio=0.9) for i in range(24)
    ]
    icon_state = {"count": 0}

    def draw_icon() -> None:
        icon = icons[icon_state["count"] % len(icons)]
        icon_state["count"] += 1
        recorder.display([DrawBitmap(icon)])

    icon_task = sim.every(50.0, draw_icon, start=0.0)
    sim.schedule(warmup_ui_ms, icon_task.stop)

    player_holder: Dict[str, AnimationPlayer] = {}

    def start_animation() -> None:
        player_holder["player"] = AnimationPlayer(
            sim,
            dateline_animation(frame_count),
            lambda op: recorder.display([op]),
        )

    sim.schedule(warmup_ui_ms, start_animation)

    times: List[float] = []
    utils: List[float] = []
    ratios: List[float] = []
    state = {"last_cpu": 0.0}

    def sample() -> None:
        times.append(sim.now)
        utils.append((recorder.encode_cpu_ms - state["last_cpu"]) / window_ms)
        state["last_cpu"] = recorder.encode_cpu_ms
        ratios.append(protocol.cache.stats.cumulative_hit_ratio)

    sample_task = sim.every(window_ms, sample)
    sim.run_until(duration_ms)
    sample_task.stop()
    if "player" in player_holder:
        player_holder["player"].stop()
    return CacheOverflowResult(
        times_ms=times,
        cpu_utilization=utils,
        cumulative_hit_ratio=ratios,
        final_hit_ratio=protocol.cache.stats.cumulative_hit_ratio,
    )


# --- Figure 7: the frame-count sweep and the 65-frame cliff -------------------

def run_frame_count_sweep(
    frame_counts: Sequence[int],
    *,
    duration_ms: float = 60_000.0,
    warmup_cycles: int = 1,
    loop_aware_cache: bool = False,
) -> List[Tuple[int, float]]:
    """Figure 7: steady-state network load vs animation frame count.

    Measures average Mbps *after* the first cycle (so the compulsory
    first transfer of every frame doesn't mask the caching behaviour).
    Set ``loop_aware_cache`` for the ablation with the paper's suggested
    loop-detecting eviction scheme.
    """
    from ..protocols.bitmapcache import LoopAwareBitmapCache

    results: List[Tuple[int, float]] = []
    for frame_count in frame_counts:
        spec = dateline_animation(frame_count)
        sim = Simulator()
        if loop_aware_cache:
            protocol = RDPProtocol(cache=LoopAwareBitmapCache())
        else:
            protocol = RDPProtocol()
        recorder = DisplayLoadRecorder(sim, protocol)
        player = AnimationPlayer(
            sim, spec, lambda op: recorder.display([op])
        )
        sim.run_until(duration_ms)
        player.stop()
        warmup_ms = warmup_cycles * spec.cycle_ms
        if warmup_ms >= duration_ms:
            raise WorkloadError("duration too short for the warmup cycle")
        mbps = recorder.trace.average_mbps(warmup_ms, duration_ms)
        results.append((frame_count, mbps))
    return results
