"""Scripted application sessions: the §6.1.2 protocol-comparison workload.

"For each network protocol, we performed a predefined set of user
interactions: editing a WordPerfect document, creating a simple bitmap in
the Gimp, and configuring a network interface in the control panel."

Each script below renders one of those interactions as a sequence of
:class:`InteractionStep` — the input events the user produced and the
display operations the application drew in response.  The same step
sequence is replayed against each protocol encoder, and
:func:`run_protocol_comparison` reduces the resulting message streams to
the paper's table via prototap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..gui.drawing import (
    Bitmap,
    CopyArea,
    DisplayOp,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    RestoreRegion,
)
from ..gui.input import InputEvent, KeyPress, KeyRelease, MouseButton, MouseMove
from ..net.prototap import ProtoTap
from ..protocols import PROTOCOL_NAMES, make_protocol
from ..sim.rng import RngRegistry


@dataclass(frozen=True)
class InteractionStep:
    """One user action and the drawing it triggered."""

    events: Tuple[InputEvent, ...] = ()
    ops: Tuple[DisplayOp, ...] = ()


def _icon(name: str, size: int = 24) -> DrawBitmap:
    """A small cacheable UI icon (toolbar buttons, glyphs)."""
    return DrawBitmap(Bitmap(f"icon:{name}", size, size, 8, compressed_ratio=0.9))


def _keystroke(key: int, *ops: DisplayOp) -> InteractionStep:
    return InteractionStep((KeyPress(key), KeyRelease(key)), tuple(ops))


def _motion(*ops: DisplayOp) -> InteractionStep:
    return InteractionStep((MouseMove(4, 2),), tuple(ops))


def _click(*ops: DisplayOp) -> InteractionStep:
    return InteractionStep(
        (MouseButton(1, True), MouseButton(1, False)), tuple(ops)
    )


def wordperfect_editing(rng: random.Random) -> List[InteractionStep]:
    """Editing a WordPerfect document: mostly typing, some menu work."""
    steps: List[InteractionStep] = []

    # Application open: window chrome, toolbar icons, document paint.
    steps.append(
        InteractionStep(
            (MouseButton(1, True), MouseButton(1, False)),
            (
                FillRect(800, 600),
                DrawWidget(48),
                *[_icon(f"wp-tool{i}") for i in range(12)],
                DrawText(1800),
            ),
        )
    )

    chars_since_wrap = 0
    for i in range(1800):
        ops: List[DisplayOp] = [DrawText(1)]
        chars_since_wrap += 1
        if chars_since_wrap >= rng.randint(55, 80):
            # Word wrap: scroll the line and repaint the tail.
            ops.append(CopyArea(600, 14))
            ops.append(DrawText(rng.randint(4, 12)))
            chars_since_wrap = 0
        steps.append(_keystroke(65 + i % 26, *ops))

        if i % 400 == 399:
            # Reach for the menu: pointer travel, open, pick, close.
            for __ in range(rng.randint(8, 14)):
                steps.append(_motion())
            steps.append(
                _click(
                    DrawWidget(26),
                    *[_icon(f"wp-menuicon{k}") for k in range(8)],
                )
            )
            for __ in range(rng.randint(3, 6)):
                steps.append(_motion(DrawWidget(2)))
            # Menu close: the document region underneath is re-exposed.
            steps.append(
                _click(RestoreRegion(220, 260, "wp-body", complexity=60))
            )
    return steps


def gimp_painting(rng: random.Random) -> List[InteractionStep]:
    """Creating a simple bitmap in the Gimp: brush strokes on a canvas."""
    steps: List[InteractionStep] = []

    # Toolbox and a fresh canvas.
    steps.append(
        InteractionStep(
            (MouseButton(1, True), MouseButton(1, False)),
            (
                DrawWidget(40),
                *[_icon(f"gimp-tool{i}") for i in range(24)],
                FillRect(400, 400),
            ),
        )
    )

    stamp_serial = 0
    for stroke in range(12):
        # Pick a tool now and then (cached icons re-highlight).
        if stroke % 3 == 0:
            for __ in range(rng.randint(6, 12)):
                steps.append(_motion())
            steps.append(_click(_icon(f"gimp-tool{stroke % 24}"), DrawWidget(3)))

        steps.append(InteractionStep((MouseButton(1, True),), ()))
        for __ in range(rng.randint(140, 220)):
            # Each motion repaints the ~48x48 canvas region the brush
            # composite touched: fresh pixels every time, so no cache
            # helps — but the region is mostly flat canvas color, so
            # run-length encoders (RDP) crush it while X ships it raw.
            stamp_serial += 1
            stamp = Bitmap(
                f"stamp:{stamp_serial}", 48, 48, 8, compressed_ratio=0.12
            )
            steps.append(_motion(DrawBitmap(stamp)))
        steps.append(InteractionStep((MouseButton(1, False),), ()))

    # A few full-tile refreshes (zoom, window expose): fresh canvas pixels.
    for i in range(6):
        tile = Bitmap(f"canvas:{i}", 128, 128, 8, compressed_ratio=0.3)
        steps.append(_click(DrawBitmap(tile)))
    return steps


def control_panel(rng: random.Random) -> List[InteractionStep]:
    """Configuring a network interface in the control panel applet."""
    steps: List[InteractionStep] = []

    steps.append(
        InteractionStep(
            (MouseButton(1, True), MouseButton(1, False)),
            (
                FillRect(520, 420),
                DrawWidget(64),
                *[_icon(f"cpl-{i}", 32) for i in range(16)],
            ),
        )
    )

    for dialog in range(6):
        # Pointer travel to the next control.
        for __ in range(rng.randint(18, 30)):
            highlight = (DrawWidget(2),) if rng.random() < 0.25 else ()
            steps.append(_motion(*highlight))
        # Open a properties dialog.
        steps.append(
            _click(DrawWidget(44), _icon(f"cpl-dlg{dialog}", 32), FillRect(380, 300))
        )
        # Type an address into a field.
        for i in range(rng.randint(8, 14)):
            steps.append(_keystroke(48 + i % 10, DrawText(1)))
        # Toggle a couple of checkboxes.
        for __ in range(rng.randint(2, 4)):
            for __ in range(rng.randint(4, 8)):
                steps.append(_motion())
            steps.append(_click(DrawWidget(2)))
        # OK button: dialog closes, the parent underneath is re-exposed.
        steps.append(
            _click(
                RestoreRegion(380, 300, "cpl-main", complexity=80),
                *[_icon(f"cpl-{i}", 32) for i in range(16)],
            )
        )
    return steps


def application_workload(seed: int = 0) -> List[InteractionStep]:
    """The full §6.1.2 trace: WordPerfect, then the Gimp, then the applet."""
    rngs = RngRegistry(seed)
    steps: List[InteractionStep] = []
    steps.extend(wordperfect_editing(rngs.stream("apps:wordperfect")))
    steps.extend(gimp_painting(rngs.stream("apps:gimp")))
    steps.extend(control_panel(rngs.stream("apps:control-panel")))
    return steps


def replay_workload(protocol_name: str, steps: Sequence[InteractionStep]) -> ProtoTap:
    """Replay *steps* against a fresh protocol session; return its tap."""
    protocol = make_protocol(protocol_name)
    tap = ProtoTap(protocol_name)

    def record(messages) -> None:
        if not messages:
            return
        if protocol.packs_display_writes:
            tap.observe_step(messages)
        else:
            # Proxy-style protocols write each display chunk immediately:
            # every chunk is its own packet.  Input still groups per step.
            tap.observe_step([m for m in messages if m.channel == "input"])
            for message in messages:
                if message.channel == "display":
                    tap.observe(message)

    for step in steps:
        flushed = []
        if step.events:
            flushed.extend(protocol.encode_input_step(step.events))
        if step.ops:
            flushed.extend(protocol.encode_display_step(step.ops))
        record(flushed)
    record(protocol.flush_input() + protocol.flush_display())
    return tap


def run_protocol_comparison(seed: int = 0) -> Dict[str, ProtoTap]:
    """The §6.1.2 experiment: the same workload over RDP, X, and LBX."""
    steps = application_workload(seed)
    return {name: replay_workload(name, steps) for name in PROTOCOL_NAMES}
