"""User-behaviour profiles (§3.2.3, §4.1.2).

"Two classes of users running different application mixes will consume
resources at different per-user rates.  As concurrent use increases, the
class of users with greater per-user resource demands will approach
saturation conditions and potential increases in latency more quickly."

A :class:`BehaviorProfile` quantifies one user class's per-user demand on
each resource — the inputs to capacity planning
(:mod:`repro.core.capacity`).  The stock profiles follow the paper's
narrative: a task-worker typing into one application, a knowledge worker
with richer interaction, and a web user whose animated pages dominate the
network (§6.1.3's warning that "if just five users open their browsers to
a page like this, the network link becomes saturated").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import WorkloadError
from ..units import kb, mb


@dataclass(frozen=True)
class BehaviorProfile:
    """Per-user steady-state resource demand for one class of users."""

    name: str
    cpu_load: float  #: average fraction of one reference CPU consumed
    memory_bytes: int  #: dynamic working set beyond the compulsory login
    network_mbps: float  #: average display+input traffic
    interactions_per_sec: float  #: latency-sensitive ops per second

    def __post_init__(self) -> None:
        if not 0.0 <= self.cpu_load <= 1.0:
            raise WorkloadError("cpu_load must be in [0, 1]")
        if self.memory_bytes < 0 or self.network_mbps < 0:
            raise WorkloadError("resource demands cannot be negative")


#: A data-entry user: steady typing into one form/editor.
TASK_WORKER = BehaviorProfile(
    name="task-worker",
    cpu_load=0.04,  # 2 ms echo per 50 ms keystroke
    memory_bytes=mb(2),
    network_mbps=0.02,
    interactions_per_sec=20.0,
)

#: An office user: editing, menus, window management, occasional images.
KNOWLEDGE_WORKER = BehaviorProfile(
    name="knowledge-worker",
    cpu_load=0.08,
    memory_bytes=mb(6),
    network_mbps=0.15,
    interactions_per_sec=8.0,
)

#: A browser user on animated pages: the Figure 4 web page sustained
#: ~1.6 Mbps of display traffic by itself.
WEB_BROWSER_USER = BehaviorProfile(
    name="web-browser",
    cpu_load=0.12,
    memory_bytes=mb(10),
    network_mbps=1.6,
    interactions_per_sec=2.0,
)

PROFILES: Dict[str, BehaviorProfile] = {
    p.name: p for p in (TASK_WORKER, KNOWLEDGE_WORKER, WEB_BROWSER_USER)
}


def behavior_profile(name: str) -> BehaviorProfile:
    """Look up a stock profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown behaviour profile {name!r}; expected one of "
            f"{sorted(PROFILES)}"
        ) from None
