"""The key-repeat typing workload and the Figure 3 stall experiment.

The paper's methodology (§4.2.2): hold a key down in a remote text editor
with client auto-repeat at 20 Hz, so the server must produce a character-
echo screen update every 50 ms.  Under load, update inter-arrival times
stretch; each excess over 50 ms is an **interactive stall**.  Load is
controlled by running N instances of ``sink`` — a greedy CPU consumer —
each of which adds one to the scheduler queue length.

:func:`run_stall_experiment` reproduces Figure 3 for any of the modelled
operating systems (plus the SVR4/IA baseline for the Evans et al.
comparison).  Sinks are launched inside interactive sessions, so on NT
they are *foreground-class* processes competing at the application's own
priority — the situation in which the paper observes that TSE's boosting
no longer protects the interactive thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..cpu.cpusim import CPU
from ..cpu.idle import idle_profile, make_scheduler
from ..cpu.scheduler import Scheduler
from ..cpu.svr4 import SVR4Scheduler
from ..cpu.thread import Burst, Thread, sink_thread
from ..errors import WorkloadError
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..sim.stats import jitter, mean

#: Client auto-repeat: 20 Hz -> one keystroke every 50 ms (§4.2.2).
KEY_REPEAT_INTERVAL_MS = 50.0
#: CPU demand of one character echo (read event, update buffer, render,
#: encode the screen update) on the reference processor.
ECHO_BURST_MS = 2.0


@dataclass
class StallResult:
    """Stall statistics at one scheduler-queue-length level."""

    os_name: str
    queue_length: int
    stalls_ms: List[float] = field(default_factory=list)

    @property
    def average_stall_ms(self) -> float:
        """Mean stall length over the observed stall instances."""
        if not self.stalls_ms:
            return 0.0
        return mean(self.stalls_ms)

    @property
    def jitter_ms(self) -> float:
        """Variability (stddev) of the stall instances (§3.2's jitter)."""
        if len(self.stalls_ms) < 2:
            return 0.0
        return jitter(self.stalls_ms)


class TypingSession:
    """Drives 20 Hz key repeat into an echo thread and measures stalls."""

    def __init__(
        self,
        sim: Simulator,
        cpu: CPU,
        *,
        interval_ms: float = KEY_REPEAT_INTERVAL_MS,
        echo_burst_ms: float = ECHO_BURST_MS,
        thread_kwargs: Optional[dict] = None,
    ) -> None:
        self.sim = sim
        self.cpu = cpu
        self.interval_ms = interval_ms
        self.echo_burst_ms = echo_burst_ms
        kwargs = {"gui": True, "foreground": True}
        kwargs.update(thread_kwargs or {})
        self.echo_thread = Thread("editor-echo", **kwargs)
        cpu.add_thread(self.echo_thread)
        self.update_times: List[float] = []
        self._task = sim.every(interval_ms, self._keystroke)

    def _keystroke(self) -> None:
        self.cpu.submit(
            self.echo_thread,
            Burst(self.echo_burst_ms, on_complete=self.update_times.append),
        )

    def stop(self) -> None:
        """Release the held key."""
        self._task.stop()

    #: Inter-arrival excesses below this are timing noise, not stalls.
    STALL_EPSILON_MS = 1.0

    def stalls(self) -> List[float]:
        """The lengths of the interactive-stall *instances* observed.

        "We call each instance of this an 'interactive stall', with the
        length of the stall defined as the inter-arrival time minus 50ms"
        (§4.2.2) — i.e. only inter-arrivals that exceed the repeat
        interval count as stalls; delayed echoes that drain in a batch
        produce one stall instance, not twenty.
        """
        out: List[float] = []
        for prev, cur in zip(self.update_times, self.update_times[1:]):
            excess = (cur - prev) - self.interval_ms
            if excess > self.STALL_EPSILON_MS:
                out.append(excess)
        return out


def _sink_kwargs(os_name: str) -> dict:
    """How sinks are scheduled when launched inside a user session."""
    if os_name in ("nt_tse", "nt_workstation"):
        return {"foreground": True}
    return {}


def run_stall_experiment(
    os_name: str,
    queue_lengths: Sequence[int],
    *,
    duration_ms: float = 60_000.0,
    seed: int = 0,
    include_idle_activity: bool = True,
    scheduler_factory: Optional[Callable[[], Scheduler]] = None,
) -> List[StallResult]:
    """Figure 3: average stall length vs scheduler queue length.

    Runs the 20 Hz typing workload for *duration_ms* (the paper's 60 s) at
    each load level, on a fresh simulated server each time.  ``svr4`` may
    be passed as *os_name* (with no idle profile) for the Evans et al.
    baseline.
    """
    results: List[StallResult] = []
    for n in queue_lengths:
        if n < 0:
            raise WorkloadError("queue length cannot be negative")
        sim = Simulator()
        if scheduler_factory is not None:
            scheduler = scheduler_factory()
        elif os_name == "svr4":
            scheduler = SVR4Scheduler()
        else:
            scheduler = make_scheduler(os_name)
        cpu = CPU(sim, scheduler, name=f"{os_name}-load{n}")
        if include_idle_activity and os_name != "svr4":
            idle_profile(os_name).install(sim, cpu, RngRegistry(seed))
        for i in range(n):
            cpu.add_thread(sink_thread(f"sink{i}", **_sink_kwargs(os_name)))
        session = TypingSession(sim, cpu)
        sim.run_until(duration_ms)
        session.stop()
        results.append(
            StallResult(
                os_name=os_name, queue_length=n, stalls_ms=session.stalls()
            )
        )
    return results
