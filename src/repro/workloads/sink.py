"""``sink``: the paper's greedy CPU consumer (§4.2.2).

"We wrote a simple C program called sink that is a greedy consumer of CPU
cycles.  Since sink never voluntarily yields the processor, each running
instance should increase the scheduler queue length by one.  We used this
program to control the load level on the server."

:func:`repro.cpu.thread.sink_thread` builds one instance; this module adds
the fleet-management convenience the experiments use.
"""

from __future__ import annotations

from typing import List, Optional

from ..cpu.cpusim import CPU
from ..cpu.thread import Thread, sink_thread
from ..errors import WorkloadError


class SinkFleet:
    """N sink processes on one CPU, resizable mid-experiment."""

    def __init__(self, cpu: CPU, count: int = 0, **thread_kwargs) -> None:
        if count < 0:
            raise WorkloadError("sink count cannot be negative")
        self.cpu = cpu
        self.thread_kwargs = thread_kwargs
        self.sinks: List[Thread] = []
        self.grow(count)

    def __len__(self) -> int:
        return len(self.sinks)

    def grow(self, n: int) -> None:
        """Launch *n* more sinks."""
        for __ in range(n):
            sink = sink_thread(f"sink{len(self.sinks)}", **self.thread_kwargs)
            self.cpu.add_thread(sink)
            self.sinks.append(sink)

    def shrink(self, n: int) -> None:
        """Kill the *n* most recently launched sinks."""
        if n > len(self.sinks):
            raise WorkloadError(f"cannot kill {n} of {len(self.sinks)} sinks")
        for __ in range(n):
            self.cpu.kill(self.sinks.pop())

    def resize(self, count: int) -> None:
        """Grow or shrink to exactly *count* sinks."""
        if count < 0:
            raise WorkloadError("sink count cannot be negative")
        if count > len(self.sinks):
            self.grow(count - len(self.sinks))
        else:
            self.shrink(len(self.sinks) - count)

    def stop_all(self) -> None:
        """Kill every sink in the fleet."""
        self.shrink(len(self.sinks))
