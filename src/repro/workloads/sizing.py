"""Server sizing by simulation: users vs latency (§3.1, §4.1.2).

The vendor sizing white papers the paper critiques "uniformly ignore ...
the issue of user-perceived latency."  This module sizes a server the way
the paper says it should be done: simulate N concurrent interactive users,
measure each keystroke's user-perceived latency, and report how many users
fit before latency crosses the perception threshold.

Works on uni- and multi-processor servers (:class:`~repro.cpu.smp.SMPSystem`),
which is what makes it a capacity-planning tool rather than a single-box
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..cpu.idle import make_scheduler
from ..cpu.smp import SMPSystem
from ..cpu.thread import Burst, Thread
from ..errors import WorkloadError
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..sim.stats import mean, percentile
from .typing import ECHO_BURST_MS, KEY_REPEAT_INTERVAL_MS


@dataclass
class SizingResult:
    """Latency outcome for one concurrent-user count."""

    users: int
    latencies_ms: List[float]
    utilization: float

    @property
    def average_latency_ms(self) -> float:
        """Mean per-keystroke latency across all users."""
        return mean(self.latencies_ms)

    @property
    def p95_latency_ms(self) -> float:
        """95th-percentile keystroke latency (tail experience)."""
        return percentile(self.latencies_ms, 95.0)


def run_sizing_experiment(
    os_name: str,
    user_counts: Sequence[int],
    *,
    cpu_count: int = 1,
    duration_ms: float = 20_000.0,
    echo_burst_ms: float = ECHO_BURST_MS,
    interval_ms: float = KEY_REPEAT_INTERVAL_MS,
    seed: int = 0,
) -> List[SizingResult]:
    """Simulate N typing users per level; measure per-keystroke latency.

    Each user's keystrokes are phase-offset (seeded) so the fleet does not
    fire in lockstep; latency is measured from keystroke to echo-burst
    completion on the server's scheduler.
    """
    results: List[SizingResult] = []
    rngs = RngRegistry(seed)
    for users in user_counts:
        if users < 1:
            raise WorkloadError("need at least one user")
        sim = Simulator()
        smp = SMPSystem(sim, lambda: make_scheduler(os_name), cpu_count)
        latencies: List[float] = []
        phase_rng = rngs.stream(f"sizing:{os_name}:{users}")
        for u in range(users):
            thread = Thread(f"user{u}:app", gui=True, foreground=True)
            smp.add_thread(thread)

            def keystroke(thread=thread) -> None:
                t0 = sim.now
                smp.submit(
                    thread,
                    Burst(
                        echo_burst_ms,
                        on_complete=lambda when, t0=t0: latencies.append(
                            when - t0
                        ),
                    ),
                )

            sim.every(
                interval_ms,
                keystroke,
                start=phase_rng.uniform(0.0, interval_ms),
            )
        sim.run_until(duration_ms)
        results.append(
            SizingResult(
                users=users,
                latencies_ms=latencies,
                utilization=smp.utilization(0.0, duration_ms),
            )
        )
    return results


def max_users_under_sla(
    results: Sequence[SizingResult], sla_ms: float = 100.0
) -> int:
    """Largest simulated user count whose average latency meets *sla_ms*."""
    if sla_ms <= 0:
        raise WorkloadError("SLA must be positive")
    fitting = [r.users for r in results if r.average_latency_ms <= sla_ms]
    return max(fitting) if fitting else 0
