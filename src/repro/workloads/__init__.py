"""User-behaviour generators: sinks, typing, hogs, animations, app scripts."""

from .animation import (
    AnimationPlayer,
    AnimationRunResult,
    AnimationSpec,
    CacheOverflowResult,
    DisplayLoadRecorder,
    banner_ad,
    dateline_animation,
    gif_10_frame,
    marquee,
    run_animations_over_protocol,
    run_cache_overflow_experiment,
    run_frame_count_sweep,
    run_gif_protocol_comparison,
    run_webpage_experiment,
)
from .apps import (
    InteractionStep,
    application_workload,
    control_panel,
    gimp_painting,
    replay_workload,
    run_protocol_comparison,
    wordperfect_editing,
)
from .behavior import (
    KNOWLEDGE_WORKER,
    PROFILES,
    TASK_WORKER,
    WEB_BROWSER_USER,
    BehaviorProfile,
    behavior_profile,
)
from .maximize import (
    MAXIMIZE_DEMAND_MS,
    MaximizeResult,
    run_maximize_experiment,
)
from .memhog import MemoryHog
from .sink import SinkFleet
from .sizing import SizingResult, max_users_under_sla, run_sizing_experiment
from .typing import (
    ECHO_BURST_MS,
    KEY_REPEAT_INTERVAL_MS,
    StallResult,
    TypingSession,
    run_stall_experiment,
)

__all__ = [
    "AnimationPlayer",
    "AnimationRunResult",
    "AnimationSpec",
    "BehaviorProfile",
    "CacheOverflowResult",
    "DisplayLoadRecorder",
    "ECHO_BURST_MS",
    "InteractionStep",
    "KEY_REPEAT_INTERVAL_MS",
    "KNOWLEDGE_WORKER",
    "MAXIMIZE_DEMAND_MS",
    "MaximizeResult",
    "MemoryHog",
    "PROFILES",
    "SinkFleet",
    "SizingResult",
    "StallResult",
    "TASK_WORKER",
    "TypingSession",
    "WEB_BROWSER_USER",
    "application_workload",
    "banner_ad",
    "behavior_profile",
    "control_panel",
    "dateline_animation",
    "gif_10_frame",
    "gimp_painting",
    "marquee",
    "replay_workload",
    "run_animations_over_protocol",
    "run_cache_overflow_experiment",
    "run_frame_count_sweep",
    "run_gif_protocol_comparison",
    "run_maximize_experiment",
    "max_users_under_sla",
    "run_protocol_comparison",
    "run_sizing_experiment",
    "run_stall_experiment",
    "run_webpage_experiment",
    "wordperfect_editing",
]
