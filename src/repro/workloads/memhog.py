"""The streaming memory hog (§5.2).

"We then started and let run for 30 seconds on the server a process that
sequentially touches each byte in a region whose total size exceeds the
available physical memory, causing the pages of the edit application's
memory to be swapped to disk."

:class:`MemoryHog` drives that behaviour against a
:class:`~repro.memory.vm.VirtualMemory` instance, either in one synchronous
sweep (as the table experiment uses) or paced on a simulator clock for
integration scenarios.
"""

from __future__ import annotations

from typing import Optional

from ..errors import WorkloadError
from ..memory.pagetable import AddressSpace
from ..memory.vm import VirtualMemory
from ..sim.engine import PeriodicTask, Simulator


class MemoryHog:
    """A non-interactive process streaming through its address space."""

    def __init__(
        self,
        vm: VirtualMemory,
        size_bytes: int,
        *,
        name: str = "memhog",
        write: bool = True,
    ) -> None:
        if size_bytes <= 0:
            raise WorkloadError("hog size must be positive")
        self.vm = vm
        self.write = write
        self.space: AddressSpace = vm.create_process(
            name, size_bytes, interactive=False
        )
        self._next_vpn = 0

    @property
    def pages(self) -> int:
        """Size of the hog's address space, in pages."""
        return self.space.num_pages

    def run_to_completion(self) -> float:
        """Touch every page once, in order; returns total latency (ms)."""
        return self.vm.touch_sequential(
            self.space, 0, self.space.num_pages, write=self.write
        )

    def touch_next(self, npages: int = 1) -> float:
        """Touch the next *npages* pages (wrapping); returns latency (ms)."""
        if npages <= 0:
            raise WorkloadError("must touch at least one page")
        latency = self.vm.touch_sequential(
            self.space, self._next_vpn, npages, write=self.write
        )
        self._next_vpn = (self._next_vpn + npages) % self.space.num_pages
        return latency

    def run_paced(
        self, sim: Simulator, pages_per_tick: int, tick_ms: float = 10.0
    ) -> PeriodicTask:
        """Stream on the simulator clock: *pages_per_tick* every *tick_ms*."""
        if pages_per_tick <= 0:
            raise WorkloadError("pages per tick must be positive")
        return sim.every(tick_ms, lambda: self.touch_next(pages_per_tick))
