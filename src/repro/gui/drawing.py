"""The display-operation vocabulary.

Applications in the simulator express their user interfaces as sequences of
**display operations**, the common currency that all three remote-display
protocols encode (each with very different efficiency — the point of §6):

* :class:`DrawText` — rendered characters (keystroke echo, documents);
* :class:`FillRect` — solid fills (backgrounds, selection, clears);
* :class:`CopyArea` — on-screen blits (scrolling);
* :class:`DrawWidget` — composite UI chrome (buttons, menus, dialogs),
  which RDP encodes as few high-level orders and X as many primitives;
* :class:`DrawBitmap` — raster images: icons, photos, and the animation
  frames of §6.1.3.  A :class:`Bitmap` is identified by ``bitmap_id`` so
  the RDP client cache can recognize re-draws of the same pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolError


@dataclass(frozen=True)
class Bitmap:
    """An identified raster image.

    ``compressed_ratio`` approximates the on-wire/in-cache compression of
    the pixel data (RLE/GIF-style); 1.0 means incompressible.
    """

    bitmap_id: str
    width: int
    height: int
    bpp: int = 8
    compressed_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ProtocolError("bitmap must have positive dimensions")
        if self.bpp not in (1, 4, 8, 16, 24, 32):
            raise ProtocolError(f"unsupported depth {self.bpp}")
        if not 0.0 < self.compressed_ratio <= 1.0:
            raise ProtocolError("compressed_ratio must be in (0, 1]")

    @property
    def raw_bytes(self) -> int:
        """Uncompressed pixel data size."""
        return self.width * self.height * self.bpp // 8

    @property
    def compressed_bytes(self) -> int:
        """Size as transferred/cached by compressing protocols."""
        return max(1, int(self.raw_bytes * self.compressed_ratio))


class DisplayOp:
    """Base class for display operations (a closed set; see module doc)."""

    __slots__ = ()


@dataclass(frozen=True)
class DrawText(DisplayOp):
    """Render *chars* characters of text."""

    chars: int

    def __post_init__(self) -> None:
        if self.chars <= 0:
            raise ProtocolError("text draw needs at least one character")


@dataclass(frozen=True)
class FillRect(DisplayOp):
    """Fill a width x height rectangle with a solid color."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ProtocolError("fill must have positive dimensions")


@dataclass(frozen=True)
class CopyArea(DisplayOp):
    """Blit a width x height on-screen region (scrolling)."""

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ProtocolError("copy must have positive dimensions")


@dataclass(frozen=True)
class DrawWidget(DisplayOp):
    """Draw composite UI chrome built from *elements* primitive pieces."""

    elements: int

    def __post_init__(self) -> None:
        if self.elements <= 0:
            raise ProtocolError("widget needs at least one element")


@dataclass(frozen=True)
class DrawBitmap(DisplayOp):
    """Display *bitmap* (full image or one animation frame)."""

    bitmap: Bitmap


@dataclass(frozen=True)
class RestoreRegion(DisplayOp):
    """Repaint a previously drawn region after occlusion (menu/dialog close).

    This op captures a real architectural asymmetry (§2, §6): the TSE
    server maintains the rendered screen state server-side, so restoring
    an uncovered region is a single blit order from the shadow surface;
    X pushes re-rendering back through the wire — the application redraws
    ``complexity`` primitives.
    """

    width: int
    height: int
    key: str  #: identifies the content being restored
    complexity: int  #: primitive count X needs to re-render it

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ProtocolError("region must have positive dimensions")
        if self.complexity <= 0:
            raise ProtocolError("complexity must be positive")
