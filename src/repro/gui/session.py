"""Session negotiation and setup costs (§6.1.1, compulsory network load).

"Session setup costs in our configurations were 45,328 bytes and 16,312
bytes for TSE and Linux/X, respectively. ... these costs are rare and
ephemeral, and are typically not major contributors to latency."

The setup sequences below itemize a plausible handshake whose totals match
the paper's measurements; the itemization matters only for byte accounting
and for exercising the connection machinery in integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ProtocolError

#: direction constants for setup messages
TO_SERVER = "input"
TO_CLIENT = "display"


@dataclass(frozen=True)
class SetupMessage:
    """One message of the session-establishment exchange."""

    name: str
    direction: str  #: TO_SERVER or TO_CLIENT
    payload_bytes: int


@dataclass(frozen=True)
class SessionSetup:
    """The complete connection-establishment exchange for one system."""

    system: str
    messages: Tuple[SetupMessage, ...]

    @property
    def total_bytes(self) -> int:
        """Total setup bytes exchanged, both directions."""
        return sum(m.payload_bytes for m in self.messages)

    def bytes_by_direction(self) -> Dict[str, int]:
        """Setup bytes split into to-server and to-client totals."""
        out = {TO_SERVER: 0, TO_CLIENT: 0}
        for m in self.messages:
            out[m.direction] += m.payload_bytes
        return out


#: TSE/RDP session establishment: connection sequence, capability
#: negotiation, licensing, and the initial desktop paint dominate.
TSE_SETUP = SessionSetup(
    "nt_tse",
    (
        SetupMessage("x224-connect", TO_SERVER, 412),
        SetupMessage("mcs-connect-initial", TO_SERVER, 1_604),
        SetupMessage("mcs-connect-response", TO_CLIENT, 1_216),
        SetupMessage("security-exchange", TO_SERVER, 1_096),
        SetupMessage("client-info", TO_SERVER, 1_340),
        SetupMessage("licensing", TO_CLIENT, 2_860),
        SetupMessage("demand-active+caps", TO_CLIENT, 3_172),
        SetupMessage("confirm-active+caps", TO_SERVER, 2_628),
        SetupMessage("sync+control+fontlist", TO_SERVER, 1_000),
        SetupMessage("fontmap+sync", TO_CLIENT, 1_200),
        SetupMessage("initial-desktop-paint", TO_CLIENT, 28_800),
    ),
)

#: X session establishment: the connection setup block (server info,
#: formats, screens), atom/extension round trips, font queries, and the
#: application's window/GC creation.
X_SETUP = SessionSetup(
    "linux",
    (
        SetupMessage("connection-request", TO_SERVER, 48),
        SetupMessage("connection-setup-block", TO_CLIENT, 8_232),
        SetupMessage("intern-atoms", TO_SERVER, 1_024),
        SetupMessage("atom-replies", TO_CLIENT, 1_024),
        SetupMessage("query-extensions", TO_SERVER, 640),
        SetupMessage("extension-replies", TO_CLIENT, 640),
        SetupMessage("open-query-fonts", TO_SERVER, 704),
        SetupMessage("font-replies", TO_CLIENT, 2_400),
        SetupMessage("create-windows-gcs-maps", TO_SERVER, 1_600),
    ),
)

_SETUPS = {"nt_tse": TSE_SETUP, "linux": X_SETUP}


def session_setup(system: str) -> SessionSetup:
    """The setup exchange for ``nt_tse`` (RDP) or ``linux`` (X)."""
    try:
        return _SETUPS[system]
    except KeyError:
        raise ProtocolError(f"no session setup modelled for {system!r}") from None
