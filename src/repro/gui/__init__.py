"""GUI substrate: display operations, input events, session setup."""

from .drawing import (
    Bitmap,
    CopyArea,
    DisplayOp,
    DrawBitmap,
    DrawText,
    DrawWidget,
    FillRect,
    RestoreRegion,
)
from .input import InputEvent, KeyPress, KeyRelease, MouseButton, MouseMove
from .session import (
    TO_CLIENT,
    TO_SERVER,
    TSE_SETUP,
    X_SETUP,
    SessionSetup,
    SetupMessage,
    session_setup,
)

__all__ = [
    "Bitmap",
    "CopyArea",
    "DisplayOp",
    "DrawBitmap",
    "DrawText",
    "DrawWidget",
    "FillRect",
    "InputEvent",
    "KeyPress",
    "KeyRelease",
    "MouseButton",
    "MouseMove",
    "RestoreRegion",
    "SessionSetup",
    "SetupMessage",
    "TO_CLIENT",
    "TO_SERVER",
    "TSE_SETUP",
    "X_SETUP",
    "session_setup",
]
