"""Input events: the traffic of the input channel (client → server)."""

from __future__ import annotations

from dataclasses import dataclass


class InputEvent:
    """Base class for user input events."""

    __slots__ = ()


@dataclass(frozen=True)
class KeyPress(InputEvent):
    """A key went down (carries the key code)."""

    key: int = 0


@dataclass(frozen=True)
class KeyRelease(InputEvent):
    """A key came up."""

    key: int = 0


@dataclass(frozen=True)
class MouseMove(InputEvent):
    """Pointer motion.  X reports every motion as a full event —

    the single biggest reason its input channel carries 13,076 messages
    where RDP's carries 736 (§6.1.2).
    """

    dx: int = 0
    dy: int = 0


@dataclass(frozen=True)
class MouseButton(InputEvent):
    """A pointer button transition."""

    button: int = 1
    pressed: bool = True
