"""Idle-state background-activity profiles (the paper's §4.1.1).

Even with no user logged in, each operating system performs periodic work:
clock-interrupt handling every 10 ms on all three systems, housekeeping
services on NT, and — on TSE — the Terminal Service and Session Manager
listening for connections plus per-session state management in the kernel
managers.  The paper calls the resulting CPU activity **compulsory load**,
measures it with Endo et al.'s lost-time methodology, and plots it as
Figures 1 (utilization traces) and 2 (cumulative latency by event duration).

Each profile below is a set of :class:`Activity` records — *(interval,
duration distribution, scheduling parameters)* — installed as real threads
on a simulated CPU, so compulsory load flows through the same scheduler the
dynamic-load experiments use.  Durations and phases draw from named RNG
streams and were calibrated so the aggregate matches the paper's ratios:
TSE ≈ 3× NT Workstation ≈ 7–8× Linux over a 10-minute idle trace, with NT's
events ≤ 100 ms and TSE's extra events at ~250 ms and ~400 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SchedulerError
from ..sim.engine import PeriodicTask, Simulator
from ..sim.rng import RngRegistry
from .cpusim import CPU
from .linuxsched import LinuxScheduler
from .nt import NTConfig, NTScheduler
from .scheduler import Scheduler
from .thread import Burst, Thread

#: Clock-interrupt period the paper measured on both NT and Linux (§4.1.1):
#: "small regular CPU spikes at 10ms intervals in both TSE and NT".
CLOCK_TICK_MS = 10.0

#: Canonical operating-system names accepted throughout the package.
OS_NAMES = ("nt_workstation", "nt_tse", "linux")


@dataclass(frozen=True)
class Activity:
    """One periodic background activity of an idle operating system."""

    name: str
    interval_ms: float  #: period between bursts
    duration_lo_ms: float  #: burst length, uniform lower bound
    duration_hi_ms: float  #: burst length, uniform upper bound
    thread_kwargs: dict = field(default_factory=dict)  #: scheduler parameters

    def mean_duration(self) -> float:
        """Expected burst length in ms (uniform midpoint)."""
        return (self.duration_lo_ms + self.duration_hi_ms) / 2.0

    def expected_busy(self, window_ms: float) -> float:
        """Expected total busy ms this activity contributes per *window_ms*."""
        return window_ms / self.interval_ms * self.mean_duration()


@dataclass(frozen=True)
class IdleProfile:
    """The complete idle-state activity set of one operating system."""

    os_name: str
    activities: Tuple[Activity, ...]

    def expected_busy(self, window_ms: float) -> float:
        """Expected aggregate busy time over *window_ms* (calibration aid)."""
        return sum(a.expected_busy(window_ms) for a in self.activities)

    def install(
        self, sim: Simulator, cpu: CPU, rngs: RngRegistry
    ) -> "InstalledProfile":
        """Create one thread + periodic task per activity on *cpu*."""
        tasks: List[PeriodicTask] = []
        threads: List[Thread] = []
        for activity in self.activities:
            thread = Thread(f"{self.os_name}:{activity.name}", **activity.thread_kwargs)
            cpu.add_thread(thread)
            threads.append(thread)
            rng = rngs.stream(f"idle:{self.os_name}:{activity.name}")

            def fire(thread=thread, activity=activity, rng=rng) -> None:
                duration = rng.uniform(
                    activity.duration_lo_ms, activity.duration_hi_ms
                )
                cpu.submit(thread, Burst(duration, tag=activity.name))

            # Random phase so independent activities don't align.
            phase = rng.uniform(0.0, activity.interval_ms)
            tasks.append(
                sim.every(activity.interval_ms, fire, start=sim.now + phase)
            )
        return InstalledProfile(self, threads, tasks)


@dataclass
class InstalledProfile:
    """Handle for a profile running on a CPU; ``stop()`` halts all activity."""

    profile: IdleProfile
    threads: List[Thread]
    tasks: List[PeriodicTask]

    def stop(self) -> None:
        """Halt every periodic activity (in-flight bursts still finish)."""
        for task in self.tasks:
            task.stop()


def _clock_tick(duration_lo: float, duration_hi: float, **thread_kwargs) -> Activity:
    return Activity(
        "clock-interrupt",
        CLOCK_TICK_MS,
        duration_lo,
        duration_hi,
        thread_kwargs=thread_kwargs,
    )


def nt_workstation_profile() -> IdleProfile:
    """NT 4.0 Workstation idle activity: clock ticks plus housekeeping.

    Endo et al. (and the paper's validation) find the bulk of NT idle
    activity in events of 100 ms or shorter.
    """
    return IdleProfile(
        "nt_workstation",
        (
            _clock_tick(0.04, 0.06, base_priority=31),
            Activity(
                "system-housekeeping",
                1_000.0,
                5.0,
                30.0,
                thread_kwargs={"base_priority": 13},
            ),
            Activity(
                "lazy-writer",
                15_000.0,
                30.0,
                100.0,
                thread_kwargs={"base_priority": 13},
            ),
        ),
    )


def nt_tse_profile() -> IdleProfile:
    """TSE idle activity: NT's, plus the multi-user services (§4.1.1).

    The additions model the Terminal Service and Session Manager listening
    for incoming connections and the idle-state per-session state
    management in the Virtual Memory, Object, and Process Managers; these
    produce the extra ~250 ms and ~400 ms events Figure 2 shows.  Both
    services run at priority 13 (§4.2.1).
    """
    base = nt_workstation_profile()
    extra = (
        Activity(
            "session-manager",
            8_000.0,
            230.0,
            270.0,
            thread_kwargs={"base_priority": 13},
        ),
        Activity(
            "terminal-service",
            20_000.0,
            380.0,
            420.0,
            thread_kwargs={"base_priority": 13},
        ),
        Activity(
            "per-session-state",
            2_000.0,
            2.0,
            8.0,
            thread_kwargs={"base_priority": 13},
        ),
    )
    return IdleProfile("nt_tse", base.activities + extra)


def linux_profile() -> IdleProfile:
    """Linux 2.0 idle activity: clock ticks and a few light daemons.

    "The Linux kernel spends much less CPU time handling tasks when idle
    than do either NT or TSE" (§4.1.1).
    """
    return IdleProfile(
        "linux",
        (
            _clock_tick(0.03, 0.05, sched_class="fifo", base_priority=99),
            Activity(
                "update-bdflush",
                5_000.0,
                20.0,
                40.0,
                thread_kwargs={"sched_class": "other"},
            ),
            Activity(
                "crond",
                60_000.0,
                15.0,
                25.0,
                thread_kwargs={"sched_class": "other"},
            ),
            Activity(
                "inetd",
                30_000.0,
                5.0,
                15.0,
                thread_kwargs={"sched_class": "other"},
            ),
        ),
    )


_PROFILES = {
    "nt_workstation": nt_workstation_profile,
    "nt_tse": nt_tse_profile,
    "linux": linux_profile,
}


def idle_profile(os_name: str) -> IdleProfile:
    """The idle profile for *os_name* (one of :data:`OS_NAMES`)."""
    try:
        return _PROFILES[os_name]()
    except KeyError:
        raise SchedulerError(
            f"unknown OS {os_name!r}; expected one of {OS_NAMES}"
        ) from None


def make_scheduler(os_name: str) -> Scheduler:
    """A fresh scheduler configured for *os_name*."""
    if os_name == "nt_workstation":
        return NTScheduler(NTConfig.workstation())
    if os_name == "nt_tse":
        return NTScheduler(NTConfig.tse())
    if os_name == "linux":
        return LinuxScheduler()
    raise SchedulerError(f"unknown OS {os_name!r}; expected one of {OS_NAMES}")
