"""The Windows NT / NT TSE scheduler model.

NT and TSE share scheduling code and differ only in configuration (§4.2.1 of
the paper).  The model implements the documented mechanisms:

* 32 priority levels; dynamic (variable) priorities 1–15.  Foreground
  threads default to base priority 9, others to 8; TSE's Session Manager
  and Terminal Service run at 13.
* A 30 ms quantum on Workstation and TSE (NT Server uses 180 ms).
* **Quantum stretching**: the administrator may multiply the foreground
  quantum by 1, 2, or 3.
* **GUI wake-up boosting**: a GUI thread woken to service user input is
  raised to priority 15 for two quanta, then drops straight back to base.
* A generic +1 wake boost for non-GUI waits, decaying one level per quantum.
* The **balance-set manager's anti-starvation sweep**: ready threads that
  have waited past a threshold get one quantum at priority 15.

The paper observes (§4.2.1) that on a multi-session terminal server the GUI
boost "cancels out" because the competing threads are also foreground and/or
GUI-related, and measures TSE stalls far worse than the mechanisms predict
(§4.2.2: "inexplicable without access to NT source code").  The TSE preset
therefore disables the *effectiveness* of the GUI boost
(``gui_wake_boost=False``) — reproducing the measured behaviour the paper
reports while the Workstation preset keeps the boost for the single-user
comparison and the boost-grace ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..errors import SchedulerError
from ..obs import current_observation
from .scheduler import PriorityReadyQueues, Scheduler
from .thread import Thread, ThreadState

#: Number of NT priority levels (0 reserved, 1-15 variable, 16-31 realtime).
NT_LEVELS = 32
#: The priority GUI wake-up and anti-starvation boosts raise a thread to.
NT_BOOST_PRIORITY = 15


@dataclass(frozen=True)
class NTConfig:
    """Tunable constants of the NT scheduler, per the paper and NT docs."""

    quantum_ms: float = 30.0
    foreground_stretch: int = 2  #: allowed values 1, 2, 3 (§4.2.1)
    foreground_base: int = 9
    background_base: int = 8
    gui_wake_boost: bool = True  #: whether the GUI boost is effective
    gui_boost_quanta: int = 2  #: boost "lasts for two quanta"
    wake_boost_levels: int = 1  #: generic wait-completion boost
    balance_interval_ms: float = 1000.0  #: anti-starvation sweep period
    starvation_ms: float = 3000.0  #: ready-wait that counts as starved
    starvation_boost_quanta: int = 1

    def __post_init__(self) -> None:
        if self.foreground_stretch not in (1, 2, 3):
            raise SchedulerError(
                f"quantum stretch must be 1, 2, or 3 "
                f"(got {self.foreground_stretch})"
            )
        if self.quantum_ms <= 0:
            raise SchedulerError("quantum must be positive")

    @classmethod
    def workstation(cls) -> "NTConfig":
        """NT 4.0 Workstation: 30 ms quantum, GUI boosting effective."""
        return cls(gui_wake_boost=True)

    @classmethod
    def tse(cls) -> "NTConfig":
        """NT TSE: Workstation's 30 ms quantum; boosting cancelled out.

        On a terminal server the competing threads are also
        foreground/GUI-related, so wake-up boosts no longer discriminate:
        "when the other competing threads are also GUI-related, as would
        be the case on a thin client server, the benefits of priority
        boosting are canceled out" (§4.2.1).  We model the cancellation by
        disabling both the GUI and the generic wake boost — every session
        thread would receive the equivalent boost, leaving relative order
        unchanged — which reproduces the §4.2.2 measurements.
        """
        return cls(gui_wake_boost=False, wake_boost_levels=0)

    @classmethod
    def server(cls) -> "NTConfig":
        """NT 4.0 Server: 180 ms quantum, no foreground stretching."""
        return cls(quantum_ms=180.0, foreground_stretch=1, gui_wake_boost=False)

    def with_stretch(self, stretch: int) -> "NTConfig":
        """This configuration with a different foreground quantum stretch."""
        return replace(self, foreground_stretch=stretch)


class NTScheduler(Scheduler):
    """Priority-preemptive round robin with NT's boosting rules."""

    name = "nt"

    def __init__(self, config: Optional[NTConfig] = None) -> None:
        super().__init__()
        self.config = config or NTConfig.workstation()
        self.queues = PriorityReadyQueues(NT_LEVELS)
        self._balance_task = None
        self._obs = current_observation()
        # Lazily-resolved instrument handles (first use only, so runs that
        # never boost/stretch keep the seed's exact metric set).
        self._stretched_counter = None
        self._boost_counters: dict = {}
        self._boost_channel = None

    def attach(self, cpu) -> None:
        super().attach(cpu)
        if self.config.balance_interval_ms > 0:
            self._balance_task = self.sim.every(
                self.config.balance_interval_ms, self._balance_set_sweep
            )

    # -- policy ------------------------------------------------------------

    def register(self, thread: Thread) -> None:
        if thread.base_priority is None:
            thread.base_priority = (
                self.config.foreground_base
                if thread.foreground
                else self.config.background_base
            )
        if not 0 <= thread.base_priority < NT_LEVELS:
            raise SchedulerError(
                f"NT priority {thread.base_priority} out of range"
            )
        thread.priority = thread.base_priority
        thread.boost_quanta_left = 0

    def quantum_for(self, thread: Thread) -> float:
        """Foreground threads get the stretched quantum (§4.2.1)."""
        stretch = self.config.foreground_stretch if thread.foreground else 1
        if (
            stretch > 1
            and self._obs is not None
        ):
            counter = self._stretched_counter
            if counter is None:
                counter = self._stretched_counter = self._obs.metrics.counter(
                    "sched.nt.stretched_quanta"
                )
            counter.value += 1
        return self.config.quantum_ms * stretch

    def enqueue_woken(self, thread: Thread) -> None:
        base = thread.base_priority
        assert base is not None
        if thread.gui and self.config.gui_wake_boost:
            thread.priority = max(thread.priority, NT_BOOST_PRIORITY)
            thread.boost_quanta_left = self.config.gui_boost_quanta
            self._count_boost("sched.nt.gui_boosts", thread)
        elif self.config.wake_boost_levels and base < NT_BOOST_PRIORITY:
            boosted = min(NT_BOOST_PRIORITY - 1, base + self.config.wake_boost_levels)
            thread.priority = max(thread.priority, boosted)
            thread.boost_quanta_left = max(thread.boost_quanta_left, 1)
            self._count_boost("sched.nt.wake_boosts", thread)
        thread.remaining_quantum = self.quantum_for(thread)
        self.queues.push(thread)

    def enqueue_expired(self, thread: Thread) -> None:
        self._decay_boost(thread)
        thread.remaining_quantum = self.quantum_for(thread)
        self.queues.push(thread)

    def enqueue_preempted(self, thread: Thread) -> None:
        # A preempted thread keeps its remaining quantum and rejoins the
        # head of its priority level.
        if thread.remaining_quantum <= 0:
            thread.remaining_quantum = self.quantum_for(thread)
        self.queues.push(thread, front=True)

    def select(self) -> Optional[Thread]:
        thread = self.queues.pop_best()
        if thread is not None and thread.remaining_quantum <= 0:
            thread.remaining_quantum = self.quantum_for(thread)
        return thread

    def preempts(self, woken: Thread, running: Thread) -> bool:
        return woken.priority > running.priority

    def runnable_count(self) -> int:
        return len(self.queues)

    def remove(self, thread: Thread) -> None:
        self.queues.remove(thread)

    # -- internals ----------------------------------------------------------

    def _count_boost(self, metric: str, thread: Thread) -> None:
        obs = self._obs
        if obs is not None:
            counter = self._boost_counters.get(metric)
            if counter is None:
                counter = self._boost_counters[metric] = obs.metrics.counter(
                    metric
                )
            counter.value += 1
            channel = self._boost_channel
            if channel is None:
                channel = self._boost_channel = obs.channel(
                    "sched.boost", "sched", "metric", "thread", "priority"
                )
            channel(self.sim.now, self.name, metric, thread.name, thread.priority)

    def _decay_boost(self, thread: Thread) -> None:
        """Expire boost quanta; after the last one, drop straight to base.

        The paper (§4.2.1): the GUI boost "lasts for two quanta", after
        which "the GUI thread's priority drops back to 9".
        """
        base = thread.base_priority
        assert base is not None
        if thread.boost_quanta_left > 0:
            thread.boost_quanta_left -= 1
            if thread.boost_quanta_left == 0:
                thread.priority = base
        else:
            thread.priority = base

    def _balance_set_sweep(self) -> None:
        """Give starved ready threads one quantum at priority 15."""
        now = self.sim.now
        for thread in self.queues.ready_threads():
            if thread.priority >= NT_BOOST_PRIORITY:
                continue
            if (
                thread.ready_since is not None
                and now - thread.ready_since >= self.config.starvation_ms
            ):
                self.queues.remove(thread)
                thread.priority = NT_BOOST_PRIORITY
                thread.boost_quanta_left = self.config.starvation_boost_quanta
                self.queues.push(thread)
                self._count_boost("sched.nt.starvation_boosts", thread)
        # The boosted thread wins the CPU at the next natural dispatch point
        # (quantum end or block) rather than preempting immediately,
        # matching the sweep's coarse one-second grain.
