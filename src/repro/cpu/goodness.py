"""The *actual* Linux 2.0 scheduler: counters, epochs, and goodness.

The paper characterizes Linux as a plain 10 ms round robin with "no
facility for automatic priority boosting" (§4.2.1), and
:class:`~repro.cpu.linuxsched.LinuxScheduler` follows that model — it is
what reproduces Figure 3.  The kernel the paper ran (2.0.36) actually
implemented something subtler, and this module provides it as a fidelity
ablation:

* every process has a **counter** of remaining ticks; the scheduler runs
  the runnable process with the highest counter (its *goodness*);
* when every runnable counter reaches zero, a new **epoch** begins:
  every process — including sleepers — gets ``counter = counter/2 +
  priority``, so interactive processes that sleep accumulate credit (up
  to 2x priority) and are selected promptly once runnable;
* 2.0's ``wake_up`` did **not** preempt the running process on an
  ordinary wake; the woken thread waits for the current counter to drain.
  ``preempt_on_wake=True`` gives the 2.2-style behaviour for comparison.

The ablation (``benchmarks/test_abl_goodness.py``) shows why the paper's
linear Figure 3 curve is consistent with the RR characterization and what
the sleeper credit would have changed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..errors import SchedulerError
from .scheduler import Scheduler
from .thread import Thread

#: DEF_PRIORITY: 20 ticks of 10 ms, expressed in ms of CPU entitlement.
DEFAULT_PRIORITY_MS = 200.0
#: Sleeper credit saturates near two full entitlements.
MAX_COUNTER_FACTOR = 2.0


class LinuxGoodnessScheduler(Scheduler):
    """Counter/epoch scheduling as Linux 2.0 actually shipped it."""

    name = "linux-goodness"

    def __init__(
        self,
        priority_ms: float = DEFAULT_PRIORITY_MS,
        *,
        preempt_on_wake: bool = False,
    ) -> None:
        super().__init__()
        if priority_ms <= 0:
            raise SchedulerError("priority entitlement must be positive")
        self.priority_ms = priority_ms
        self.preempt_on_wake = preempt_on_wake
        self._ready: Deque[Thread] = deque()
        self._all: List[Thread] = []
        self.epochs = 0

    # -- counter bookkeeping ----------------------------------------------------

    def _counter(self, thread: Thread) -> float:
        return thread.sched_data.get("counter", 0.0)

    def _set_counter(self, thread: Thread, value: float) -> None:
        thread.sched_data["counter"] = value

    def _new_epoch(self) -> None:
        """counter = counter/2 + priority, for every process alive."""
        self.epochs += 1
        cap = self.priority_ms * MAX_COUNTER_FACTOR
        for thread in self._all:
            refreshed = min(cap, self._counter(thread) / 2.0 + self.priority_ms)
            self._set_counter(thread, refreshed)

    # -- Scheduler interface --------------------------------------------------------

    def register(self, thread: Thread) -> None:
        if thread.base_priority is None:
            thread.base_priority = 0  # nice 0
        thread.priority = 0
        self._set_counter(thread, self.priority_ms)
        self._all.append(thread)

    def enqueue_woken(self, thread: Thread) -> None:
        # Sleepers spent no counter; whatever the epochs granted, they keep.
        # 2.0's add_to_runqueue inserts at the head and goodness comparison
        # is strict, so a woken process wins counter ties against CPU hogs.
        thread.remaining_quantum = max(0.0, self._counter(thread))
        self._ready.appendleft(thread)

    def enqueue_expired(self, thread: Thread) -> None:
        self._set_counter(thread, 0.0)
        thread.remaining_quantum = 0.0
        self._ready.append(thread)

    def enqueue_preempted(self, thread: Thread) -> None:
        # The interrupted thread keeps its unconsumed counter.
        self._set_counter(thread, max(0.0, thread.remaining_quantum))
        self._ready.appendleft(thread)

    def select(self) -> Optional[Thread]:
        if not self._ready:
            return None
        if all(self._counter(t) <= 0.0 for t in self._ready):
            self._new_epoch()
        best = max(self._ready, key=self._counter)
        self._ready.remove(best)
        best.remaining_quantum = max(self._counter(best), 1e-9)
        return best

    def preempts(self, woken: Thread, running: Thread) -> bool:
        if not self.preempt_on_wake:
            return False
        return self._counter(woken) > running.remaining_quantum

    def on_block(self, thread: Thread) -> None:
        # Bank the unconsumed counter for the next wake/epoch.
        self._set_counter(thread, max(0.0, thread.remaining_quantum))

    def runnable_count(self) -> int:
        return len(self._ready)

    def remove(self, thread: Thread) -> None:
        try:
            self._ready.remove(thread)
        except ValueError:
            pass
        try:
            self._all.remove(thread)
        except ValueError:
            pass
