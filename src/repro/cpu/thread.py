"""Threads and CPU bursts.

A :class:`Thread` is the schedulable entity.  Its demand is expressed as a
queue of :class:`Burst` objects: each burst is a run-to-block stretch of CPU
work (in milliseconds of CPU time on the simulated processor).  When a
thread's current burst completes, its completion callback fires (this is how
a keystroke-echo thread emits its display update) and the thread either
starts its next queued burst or blocks.

Scheduling metadata the paper's schedulers care about lives directly on the
thread: base priority, GUI/foreground flags (NT boosting and quantum
stretching), the scheduling class (Linux/SVR4), and accounting for
starvation detection and interactivity estimation.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from typing import Any, Callable, Deque, Optional

from ..errors import SchedulerError


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    NEW = "new"  #: created, not yet added to a CPU
    READY = "ready"  #: runnable, waiting in a ready queue
    RUNNING = "running"  #: currently on the CPU
    BLOCKED = "blocked"  #: no queued bursts; waiting to be woken
    TERMINATED = "terminated"  #: removed; will never run again


class Burst:
    """One run-to-block stretch of CPU demand.

    Parameters
    ----------
    demand_ms:
        CPU time required, in ms on the simulated processor.  ``math.inf``
        makes a greedy, never-blocking burst (the paper's ``sink`` program).
    on_complete:
        Called as ``on_complete(completion_time_ms)`` when the burst's last
        instruction retires.
    tag:
        Arbitrary payload identifying what this burst services (e.g. the
        keystroke sequence number); used by measurement code.
    """

    __slots__ = (
        "demand_ms",
        "remaining",
        "on_complete",
        "tag",
        "created_at",
        "first_run_at",
        "completed_at",
    )

    def __init__(
        self,
        demand_ms: float,
        on_complete: Optional[Callable[[float], None]] = None,
        tag: Any = None,
    ) -> None:
        if demand_ms < 0:
            raise SchedulerError(f"negative burst demand: {demand_ms}")
        self.demand_ms = demand_ms
        self.remaining = demand_ms
        self.on_complete = on_complete
        self.tag = tag
        self.created_at: Optional[float] = None
        self.first_run_at: Optional[float] = None
        self.completed_at: Optional[float] = None

    @property
    def is_infinite(self) -> bool:
        """True for greedy bursts that never voluntarily yield (``sink``)."""
        return math.isinf(self.demand_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Burst demand={self.demand_ms} remaining={self.remaining}>"


class Thread:
    """A schedulable thread with a queue of CPU bursts.

    Parameters
    ----------
    name:
        Human-readable identifier (appears in traces).
    base_priority:
        The scheduler-specific base priority; ``None`` lets the scheduler
        assign its default for the thread's flags.
    gui:
        True for threads that service user input/display (candidates for
        NT's GUI wake-up boost and SVR4's IA class).
    foreground:
        True for threads of the foreground application (NT base priority 9
        vs 8, and quantum stretching).
    sched_class:
        Scheduling class name understood by the scheduler in use
        (e.g. ``"other"``, ``"fifo"``, ``"rr"`` for Linux; ``"ts"``, ``"ia"``,
        ``"sys"`` for SVR4).  ``None`` selects the scheduler default.
    session:
        Opaque session identifier, used only for reporting.
    """

    _next_id = 0

    def __init__(
        self,
        name: str,
        base_priority: Optional[int] = None,
        *,
        gui: bool = False,
        foreground: bool = False,
        sched_class: Optional[str] = None,
        session: Any = None,
    ) -> None:
        self.tid = Thread._next_id
        Thread._next_id += 1
        self.name = name
        self.base_priority = base_priority
        self.gui = gui
        self.foreground = foreground
        self.sched_class = sched_class
        self.session = session

        self.state = ThreadState.NEW
        self.bursts: Deque[Burst] = deque()
        self.current_burst: Optional[Burst] = None

        # Scheduler-managed dynamic state.
        self.priority: int = 0  #: current (possibly boosted) priority
        self.remaining_quantum: float = 0.0  #: ms left in the current quantum
        self.boost_quanta_left: int = 0  #: quanta left of an NT GUI boost
        self.sched_data: dict = {}  #: scratch space for scheduler-specific state

        # Accounting.
        self.cpu_time: float = 0.0  #: total ms of CPU time consumed
        self.ready_since: Optional[float] = None  #: when it last became READY
        self.last_ran_at: float = 0.0  #: when it last had CPU
        self.dispatch_count: int = 0  #: times selected to run

    # -- demand management -------------------------------------------------

    @property
    def has_work(self) -> bool:
        """True if a burst is in progress or queued."""
        return self.current_burst is not None or bool(self.bursts)

    def push_burst(self, burst: Burst) -> None:
        """Queue *burst* (does not change state; use ``CPU.submit``)."""
        if self.state is ThreadState.TERMINATED:
            raise SchedulerError(f"thread {self.name!r} is terminated")
        self.bursts.append(burst)

    def take_next_burst(self) -> Optional[Burst]:
        """Pop the next queued burst into ``current_burst``; None if empty."""
        if self.current_burst is not None:
            raise SchedulerError(
                f"thread {self.name!r} already has a burst in progress"
            )
        if not self.bursts:
            return None
        self.current_burst = self.bursts.popleft()
        return self.current_burst

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Thread {self.name!r} tid={self.tid} {self.state.value}"
            f" prio={self.priority}>"
        )


def sink_thread(name: str = "sink", **kwargs: Any) -> Thread:
    """The paper's ``sink``: a greedy consumer of CPU cycles.

    Each running instance increases the scheduler queue length by one, which
    is how the paper controls server load in the Figure 3 experiment.  Extra
    keyword arguments pass through to :class:`Thread` (so an experiment can
    make sinks foreground or background, per scenario).
    """
    thread = Thread(name, **kwargs)
    thread.push_burst(Burst(math.inf))
    return thread
