"""Lost-time measurement (Endo et al., adopted by the paper's §4.1.1).

Endo et al. measured user-perceived latency on real hardware by combining
Pentium performance counters with idle-loop instrumentation to determine
when, and for how long, the CPU was busy.  In simulation the CPU's busy
intervals are directly observable, so this module reimplements the
*methodology* on top of the simulated trace:

* :class:`LostTimeMonitor` reduces a CPU's busy-slice trace to **busy
  events** — maximal busy stretches, with sub-millisecond scheduling gaps
  coalesced the way the hardware instrumentation's resolution would.
* :func:`run_idle_experiment` runs one OS's idle profile for a configurable
  window and returns the busy events, their cumulative-latency curve
  (Figure 2) and the utilization trace (Figure 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from ..sim.rng import RngRegistry
from ..sim.stats import cumulative_latency_by_duration
from .cpusim import CPU
from .idle import idle_profile, make_scheduler

#: Busy intervals separated by less than this are one user-perceived event.
DEFAULT_MERGE_GAP_MS = 1.0

#: Figure 2's x-axis: event-duration thresholds in ms.
FIG2_THRESHOLDS_MS = tuple(float(t) for t in range(0, 601, 10))


class LostTimeMonitor:
    """Extract user-perceived busy events from a CPU's busy trace."""

    def __init__(self, cpu: CPU, merge_gap_ms: float = DEFAULT_MERGE_GAP_MS) -> None:
        self.cpu = cpu
        self.merge_gap_ms = merge_gap_ms

    def busy_events(self, t0: float, t1: float) -> List[Tuple[float, float]]:
        """Maximal busy events within ``[t0, t1)``, gaps coalesced."""
        events: List[Tuple[float, float]] = []
        for start, end in self.cpu.busy_trace.merged():
            start = max(start, t0)
            end = min(end, t1)
            if end <= start:
                continue
            if events and start - events[-1][1] <= self.merge_gap_ms:
                events[-1] = (events[-1][0], end)
            else:
                events.append((start, end))
        return events

    def event_durations(self, t0: float, t1: float) -> List[float]:
        """Durations (ms) of the busy events in ``[t0, t1)``."""
        return [end - start for start, end in self.busy_events(t0, t1)]

    def total_lost_time(self, t0: float, t1: float) -> float:
        """Total busy ms in the window — the aggregate compulsory load."""
        return sum(self.event_durations(t0, t1))

    def attribution(self, t0: float, t1: float) -> dict:
        """Busy ms per thread name in ``[t0, t1)`` — whose activity it was.

        This is the drill-down Endo et al.'s methodology enables: not just
        *that* the CPU was busy when the user's input arrived, but which
        service (Session Manager, Terminal Service, clock interrupts, ...)
        was responsible.  Sorted descending by cost.
        """
        out = {}
        for name, trace in self.cpu.thread_traces.items():
            busy = sum(
                min(end, t1) - max(start, t0)
                for start, end in trace.merged()
                if min(end, t1) > max(start, t0)
            )
            if busy > 0:
                out[name] = busy
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))


@dataclass
class IdleStateResult:
    """Everything Figures 1 and 2 need, for one operating system."""

    os_name: str
    duration_ms: float
    event_durations_ms: List[float]
    cpu: CPU

    @property
    def total_lost_time_ms(self) -> float:
        """Aggregate busy time of the idle run, in ms."""
        return sum(self.event_durations_ms)

    @property
    def idle_utilization(self) -> float:
        """Fraction of the window the 'idle' system kept the CPU busy."""
        return self.total_lost_time_ms / self.duration_ms

    def cumulative_latency_curve(
        self, thresholds_ms: Sequence[float] = FIG2_THRESHOLDS_MS
    ) -> Tuple[List[float], List[float]]:
        """Figure 2: (thresholds in ms, cumulative latency in seconds)."""
        curve = cumulative_latency_by_duration(
            self.event_durations_ms, thresholds_ms
        )
        return list(thresholds_ms), curve

    def utilization_trace(
        self, bin_ms: float = 1000.0, t0: float = 0.0, t1: Optional[float] = None
    ) -> Tuple[List[float], List[float]]:
        """Figure 1: per-bin CPU utilization over the idle run."""
        end = self.duration_ms if t1 is None else t1
        return self.cpu.busy_trace.utilization(t0, end, bin_ms)


def run_idle_experiment(
    os_name: str,
    duration_ms: float = 600_000.0,
    seed: int = 0,
    merge_gap_ms: float = DEFAULT_MERGE_GAP_MS,
) -> IdleStateResult:
    """Run *os_name*'s idle profile for *duration_ms* and measure lost time.

    This is the experiment behind Figures 1 and 2: boot the OS model, log
    nobody in, and record every busy event the instrumented idle loop sees.
    """
    sim = Simulator()
    rngs = RngRegistry(seed)
    cpu = CPU(sim, make_scheduler(os_name), name=os_name)
    profile = idle_profile(os_name)
    installed = profile.install(sim, cpu, rngs)
    sim.run_until(duration_ms)
    installed.stop()
    monitor = LostTimeMonitor(cpu, merge_gap_ms)
    return IdleStateResult(
        os_name=os_name,
        duration_ms=duration_ms,
        event_durations_ms=monitor.event_durations(0.0, duration_ms),
        cpu=cpu,
    )
