"""The simulated CPU: dispatch, time slicing, preemption, accounting.

One :class:`CPU` owns one :class:`~repro.cpu.scheduler.Scheduler` and any
number of threads.  It advances threads' bursts in *slices* — each slice ends
at whichever comes first of quantum expiry or burst completion — and records
every busy slice in an :class:`~repro.sim.trace.IntervalTrace`, which is what
the lost-time measurement (Figures 1 and 2) consumes.

A ``speed`` factor scales the processor: burst demands are expressed in ms
of CPU time on a reference processor, and a CPU with ``speed=2.0`` retires
them in half the wall-clock time.  This is how the paper's "upgrading to a
faster processor brings operations under the boost grace period" analysis is
reproduced (see ``benchmarks/test_abl_boost_grace.py``).
"""

from __future__ import annotations

from typing import Optional

from ..errors import SchedulerError
from ..obs import current_observation
from ..sim.engine import Event, Simulator
from ..sim.trace import IntervalTrace
from .scheduler import Scheduler
from .thread import Burst, Thread, ThreadState

_EPS = 1e-9


class CPU:
    """A single simulated processor driven by a pluggable scheduler."""

    def __init__(
        self,
        sim: Simulator,
        scheduler: Scheduler,
        *,
        name: str = "cpu0",
        speed: float = 1.0,
        context_switch_ms: float = 0.0,
    ) -> None:
        if speed <= 0:
            raise SchedulerError("CPU speed must be positive")
        if context_switch_ms < 0:
            raise SchedulerError("context-switch cost cannot be negative")
        self.sim = sim
        self.scheduler = scheduler
        self.name = name
        self.speed = speed
        #: Wall-clock cost of switching to a *different* thread: direct
        #: dispatch cost plus cache/TLB pollution.  The "execution
        #: fragmentation" horn of the paper's quantum catch-22 (§4.2.1)
        #: only exists because this is non-zero on real hardware.
        self.context_switch_ms = context_switch_ms
        scheduler.attach(self)

        self.current: Optional[Thread] = None
        self.busy_trace = IntervalTrace(name)
        #: Per-thread busy intervals, for lost-time attribution: which
        #: service's activity a user's input would have collided with.
        self.thread_traces: dict = {}
        self.threads: list[Thread] = []
        self.context_switches = 0

        self._slice_event: Optional[Event] = None
        self._slice_start = 0.0
        self._slice_cs = 0.0  #: unconsumed switch overhead in this slice
        self._last_thread: Optional[Thread] = None
        self._dispatching = False
        self._obs = current_observation()
        # Instrument handles resolved lazily on first use, so a CPU that
        # never switches/dispatches registers exactly the metrics the seed
        # kernel's artifacts would contain — and the per-slice bookkeeping
        # below skips the registry's name lookups.
        self._switch_counter = None
        self._switch_channel = None
        self._dispatch_counter = None
        self._rq_gauge = None

    # -- thread management --------------------------------------------------

    def add_thread(self, thread: Thread) -> Thread:
        """Register *thread* with the scheduler; runnable threads go ready."""
        if thread.state is not ThreadState.NEW:
            raise SchedulerError(
                f"thread {thread.name!r} already added (state {thread.state})"
            )
        self.scheduler.register(thread)
        self.threads.append(thread)
        if thread.has_work:
            self._make_ready(thread)
        else:
            thread.state = ThreadState.BLOCKED
        self._try_dispatch()
        return thread

    def submit(self, thread: Thread, burst: Burst) -> Burst:
        """Queue *burst* on *thread*, waking it if it was blocked."""
        burst.created_at = self.sim.now
        thread.push_burst(burst)
        if thread.state is ThreadState.BLOCKED:
            self._make_ready(thread)
            self._try_dispatch()
        return burst

    def kill(self, thread: Thread) -> None:
        """Terminate *thread* immediately, charging any partial slice."""
        if thread.state is ThreadState.TERMINATED:
            return
        if thread is self.current:
            self._charge_current()
            self._cancel_slice()
            self.current = None
        elif thread.state is ThreadState.READY:
            self.scheduler.remove(thread)
        thread.state = ThreadState.TERMINATED
        thread.bursts.clear()
        thread.current_burst = None
        self._try_dispatch()

    # -- load observation -------------------------------------------------------

    @property
    def run_queue_length(self) -> int:
        """Threads waiting in ready queues (the paper's Figure 3 x-axis)."""
        return self.scheduler.runnable_count()

    @property
    def load(self) -> int:
        """Runnable threads including the one on the CPU."""
        return self.run_queue_length + (1 if self.current is not None else 0)

    def utilization(self, t0: float, t1: float) -> float:
        """Fraction of ``[t0, t1)`` the CPU spent busy."""
        if t1 <= t0:
            raise SchedulerError("empty utilization window")
        busy = 0.0
        for start, end in self.busy_trace.merged():
            busy += max(0.0, min(end, t1) - max(start, t0))
        return busy / (t1 - t0)

    # -- state transitions --------------------------------------------------------

    def _make_ready(self, thread: Thread) -> None:
        thread.state = ThreadState.READY
        thread.ready_since = self.sim.now
        self.scheduler.enqueue_woken(thread)
        if self.current is not None and self.scheduler.preempts(
            thread, self.current
        ):
            self._preempt_current()

    def _preempt_current(self) -> None:
        thread = self.current
        assert thread is not None
        self._charge_current()
        self._cancel_slice()
        self.current = None
        thread.state = ThreadState.READY
        thread.ready_since = self.sim.now
        self.scheduler.enqueue_preempted(thread)

    def _charge_current(self) -> None:
        """Account for the partial slice the current thread has run.

        This is the per-quantum bookkeeping hot spot: one call per slice
        boundary, so the whole account — time, quantum, burst progress,
        both interval traces — is computed once on locals and written back
        in a single pass.
        """
        thread = self.current
        assert thread is not None
        now = self.sim.now
        start = self._slice_start
        elapsed = now - start
        if elapsed <= 0:
            return
        overhead = self._slice_cs
        if overhead > elapsed:
            overhead = elapsed
        self._slice_cs -= overhead
        thread.cpu_time += elapsed
        thread.last_ran_at = now
        thread.remaining_quantum -= elapsed
        burst = thread.current_burst
        assert burst is not None
        if not burst.is_infinite:
            remaining = burst.remaining - (elapsed - overhead) * self.speed
            burst.remaining = remaining if remaining > 0.0 else 0.0
        self.busy_trace.record(start, now)
        trace = self.thread_traces.get(thread.name)
        if trace is None:
            trace = IntervalTrace(thread.name)
            self.thread_traces[thread.name] = trace
        trace.record(start, now)
        self._slice_start = now

    def _cancel_slice(self) -> None:
        if self._slice_event is not None:
            self._slice_event.cancel()
            self._slice_event = None

    # -- dispatch loop ---------------------------------------------------------

    def _try_dispatch(self) -> None:
        if self._dispatching:
            return
        self._dispatching = True
        try:
            self._dispatch()
        finally:
            self._dispatching = False

    def _dispatch(self) -> None:
        if self.current is not None:
            return
        thread = self.scheduler.select()
        if thread is None:
            return
        if thread.state is not ThreadState.READY:
            raise SchedulerError(
                f"scheduler selected thread {thread.name!r} in state "
                f"{thread.state}"
            )
        if thread.current_burst is None and thread.take_next_burst() is None:
            raise SchedulerError(
                f"scheduler selected thread {thread.name!r} with no work"
            )
        if thread.remaining_quantum <= 0:
            raise SchedulerError(
                f"{self.scheduler.name}.select() left thread "
                f"{thread.name!r} with no quantum"
            )
        burst = thread.current_burst
        assert burst is not None
        if burst.first_run_at is None:
            burst.first_run_at = self.sim.now
        thread.state = ThreadState.RUNNING
        thread.ready_since = None
        thread.dispatch_count += 1
        self.current = thread
        self._slice_start = self.sim.now
        obs = self._obs
        if thread is not self._last_thread:
            self._slice_cs = self.context_switch_ms
            if self._last_thread is not None:
                self.context_switches += 1
                if obs is not None:
                    counter = self._switch_counter
                    if counter is None:
                        counter = self._switch_counter = obs.metrics.counter(
                            "cpu.context_switches"
                        )
                        self._switch_channel = obs.channel(
                            "cpu.switch", "cpu", "prev", "next"
                        )
                    counter.value += 1
                    self._switch_channel(
                        self.sim.now,
                        self.name,
                        self._last_thread.name,
                        thread.name,
                    )
        if obs is not None:
            counter = self._dispatch_counter
            if counter is None:
                counter = self._dispatch_counter = obs.metrics.counter(
                    "cpu.dispatches"
                )
                self._rq_gauge = obs.metrics.gauge("cpu.run_queue_depth")
            counter.value += 1
            # Inlined Gauge.set: one sample per dispatch is the hottest
            # gauge in the figure experiments.
            gauge = self._rq_gauge
            depth = self.scheduler.runnable_count()
            gauge.last = depth
            if gauge.samples == 0 or depth > gauge.peak:
                gauge.peak = depth
            gauge.samples += 1
        self._last_thread = thread

        self._slice_event = self.sim.schedule(
            self._slice_len(thread), self._end_slice
        )

    def _slice_len(self, thread: Thread) -> float:
        """Wall time to the next slice boundary, including switch cost."""
        burst = thread.current_burst
        assert burst is not None
        if burst.is_infinite:
            return thread.remaining_quantum
        work = self._slice_cs + burst.remaining / self.speed
        return min(thread.remaining_quantum, work)

    def _end_slice(self) -> None:
        thread = self.current
        assert thread is not None
        self._slice_event = None
        self._charge_current()
        burst = thread.current_burst
        assert burst is not None

        completed = not burst.is_infinite and burst.remaining <= _EPS
        callback: Optional[tuple] = None
        if completed:
            burst.completed_at = self.sim.now
            if burst.on_complete is not None:
                callback = (burst.on_complete, self.sim.now)
            thread.current_burst = None
            if thread.take_next_burst() is not None:
                # More queued work: keep running in the same quantum if any
                # of it remains, otherwise round-robin to the back.
                if thread.remaining_quantum <= _EPS:
                    self._requeue_expired(thread)
                else:
                    self._continue_running(thread)
            else:
                self.current = None
                thread.state = ThreadState.BLOCKED
                self.scheduler.on_block(thread)
        else:
            # Quantum expired with work remaining.
            self._requeue_expired(thread)

        # Run the completion callback with the CPU in a consistent state; it
        # may submit new bursts or wake other threads.
        if callback is not None:
            on_complete, when = callback
            on_complete(when)
        self._try_dispatch()

    def _continue_running(self, thread: Thread) -> None:
        burst = thread.current_burst
        assert burst is not None
        if burst.first_run_at is None:
            burst.first_run_at = self.sim.now
        self._slice_start = self.sim.now
        # Same thread keeps running: no context-switch cost.
        self._slice_event = self.sim.schedule(
            self._slice_len(thread), self._end_slice
        )

    def _requeue_expired(self, thread: Thread) -> None:
        self.current = None
        thread.state = ThreadState.READY
        thread.ready_since = self.sim.now
        self.scheduler.enqueue_expired(thread)
