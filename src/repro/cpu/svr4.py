"""An SVR4 scheduler with Evans et al.'s interactive (IA) improvements.

The paper uses Evans, Clarke, Singleton & Smaalders, *Optimizing Unix
Resource Scheduling for User Interaction* (USENIX 1993) as its "good"
baseline: a time-sharing dispatch table whose priorities reward sleepers and
punish quantum-expirers, plus an **interactive class** that boosts threads
identified as interactive so keystroke latency stays flat as load grows.

This module implements:

* the **TS** (time-sharing) class: priorities 0–59 driven by a dispatch
  table — ``tqexp`` (priority after quantum expiry, lower), ``slpret``
  (priority after sleep return, higher), and a per-priority quantum that
  shrinks as priority rises;
* the **IA** class: TS plus a fixed interactivity boost, assigned to
  GUI threads (``thread.gui``) by default;
* a **SYS** class: fixed high priorities for kernel daemons/interrupts.

With this policy, a CPU hog's priority decays toward 0 while an interactive
thread returns from sleep near the top of the TS range (plus the IA boost),
so it preempts the hogs immediately — reproducing Evans et al.'s flat
keystroke-latency curve out to load 20 (``benchmarks/test_abl_svr4_interactive.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SchedulerError
from .scheduler import PriorityReadyQueues, Scheduler
from .thread import Thread

#: TS/IA user priority range.
TS_LEVELS = 60
#: Global priority levels: TS/IA 0-59, SYS 60-99.
GLOBAL_LEVELS = 100
#: Offset of the SYS class in global priority space.
SYS_BASE = 60


@dataclass(frozen=True)
class DispatchTable:
    """The shape of an SVR4 ``ts_dptbl``, parameterized rather than tabulated.

    * ``quantum(prio)``  — time slice, longer for lower priorities;
    * ``tqexp(prio)``    — new priority after using a full quantum;
    * ``slpret(prio)``   — new priority after returning from sleep.
    """

    base_quantum_ms: float = 20.0  #: quantum at the top priority
    quantum_step_ms: float = 2.0  #: added per level below the top
    tqexp_drop: int = 10  #: priority penalty for burning a quantum
    slpret_gain: int = 25  #: priority reward for sleeping
    ia_boost: int = 10  #: extra levels for the interactive class

    def quantum(self, priority: int) -> float:
        """Time slice for *priority*: longer for lower priorities."""
        return self.base_quantum_ms + (TS_LEVELS - 1 - priority) * self.quantum_step_ms

    def tqexp(self, priority: int) -> int:
        """New priority after burning a full quantum (a demotion)."""
        return max(0, priority - self.tqexp_drop)

    def slpret(self, priority: int) -> int:
        """New priority on sleep return (the interactivity reward)."""
        return min(TS_LEVELS - 1, priority + self.slpret_gain)


class SVR4Scheduler(Scheduler):
    """SVR4 TS/IA/SYS classes with Evans et al.'s interactive protection."""

    name = "svr4"

    #: Default user priority for new TS/IA threads.
    DEFAULT_USER_PRIORITY = 29

    def __init__(self, table: Optional[DispatchTable] = None) -> None:
        super().__init__()
        self.table = table or DispatchTable()
        self.queues = PriorityReadyQueues(GLOBAL_LEVELS)

    # -- class/priority plumbing -----------------------------------------------

    def register(self, thread: Thread) -> None:
        if thread.sched_class is None:
            thread.sched_class = "ia" if thread.gui else "ts"
        if thread.sched_class not in ("ts", "ia", "sys"):
            raise SchedulerError(
                f"unknown SVR4 scheduling class {thread.sched_class!r}"
            )
        if thread.sched_class == "sys":
            if thread.base_priority is None:
                thread.base_priority = 20  # mid-SYS
            if not 0 <= thread.base_priority < GLOBAL_LEVELS - SYS_BASE:
                raise SchedulerError(
                    f"sys priority {thread.base_priority} out of range"
                )
            thread.priority = SYS_BASE + thread.base_priority
        else:
            if thread.base_priority is None:
                thread.base_priority = self.DEFAULT_USER_PRIORITY
            if not 0 <= thread.base_priority < TS_LEVELS:
                raise SchedulerError(
                    f"ts priority {thread.base_priority} out of range"
                )
            thread.priority = self._clamp_user(
                thread, thread.base_priority
            )
        thread.sched_data["user_priority"] = (
            thread.base_priority if thread.sched_class != "sys" else None
        )

    def _clamp_user(self, thread: Thread, user_priority: int) -> int:
        """Apply the IA boost and clamp to the TS range (global space)."""
        if thread.sched_class == "ia":
            user_priority = min(TS_LEVELS - 1, user_priority + self.table.ia_boost)
        return max(0, min(TS_LEVELS - 1, user_priority))

    def _quantum_for(self, thread: Thread) -> float:
        if thread.sched_class == "sys":
            return 100.0  # SYS threads run to block in practice
        return self.table.quantum(thread.priority)

    # -- policy ------------------------------------------------------------------

    def enqueue_woken(self, thread: Thread) -> None:
        if thread.sched_class != "sys":
            user = thread.sched_data["user_priority"]
            user = self.table.slpret(user)
            thread.sched_data["user_priority"] = user
            thread.priority = self._clamp_user(thread, user)
        thread.remaining_quantum = self._quantum_for(thread)
        self.queues.push(thread)

    def enqueue_expired(self, thread: Thread) -> None:
        if thread.sched_class != "sys":
            user = thread.sched_data["user_priority"]
            user = self.table.tqexp(user)
            thread.sched_data["user_priority"] = user
            thread.priority = self._clamp_user(thread, user)
        thread.remaining_quantum = self._quantum_for(thread)
        self.queues.push(thread)

    def enqueue_preempted(self, thread: Thread) -> None:
        if thread.remaining_quantum <= 0:
            thread.remaining_quantum = self._quantum_for(thread)
        self.queues.push(thread, front=True)

    def select(self) -> Optional[Thread]:
        thread = self.queues.pop_best()
        if thread is not None and thread.remaining_quantum <= 0:
            thread.remaining_quantum = self._quantum_for(thread)
        return thread

    def preempts(self, woken: Thread, running: Thread) -> bool:
        return woken.priority > running.priority

    def runnable_count(self) -> int:
        return len(self.queues)

    def remove(self, thread: Thread) -> None:
        self.queues.remove(thread)
