"""Processor substrate: threads, schedulers, CPUs, idle profiles, lost time.

The schedulers model the three systems the paper analyzes in §4:

* :class:`~repro.cpu.nt.NTScheduler` — NT Workstation / TSE (quantum
  stretching, GUI wake-up boosting, balance-set anti-starvation sweep);
* :class:`~repro.cpu.linuxsched.LinuxScheduler` — Linux 2.0's 10 ms
  round robin with no interactive protection;
* :class:`~repro.cpu.svr4.SVR4Scheduler` — the Evans et al. SVR4 baseline
  with the interactive (IA) class.
"""

from .cpusim import CPU
from .goodness import LinuxGoodnessScheduler
from .idle import (
    OS_NAMES,
    Activity,
    IdleProfile,
    idle_profile,
    linux_profile,
    make_scheduler,
    nt_tse_profile,
    nt_workstation_profile,
)
from .linuxsched import LINUX_QUANTUM_MS, LinuxScheduler
from .losttime import (
    FIG2_THRESHOLDS_MS,
    IdleStateResult,
    LostTimeMonitor,
    run_idle_experiment,
)
from .nt import NT_BOOST_PRIORITY, NTConfig, NTScheduler
from .scheduler import PriorityReadyQueues, Scheduler
from .smp import SMPSystem
from .svr4 import DispatchTable, SVR4Scheduler
from .thread import Burst, Thread, ThreadState, sink_thread

__all__ = [
    "Activity",
    "Burst",
    "CPU",
    "DispatchTable",
    "FIG2_THRESHOLDS_MS",
    "IdleProfile",
    "IdleStateResult",
    "LINUX_QUANTUM_MS",
    "LinuxGoodnessScheduler",
    "LinuxScheduler",
    "LostTimeMonitor",
    "NTConfig",
    "NTScheduler",
    "NT_BOOST_PRIORITY",
    "OS_NAMES",
    "PriorityReadyQueues",
    "SMPSystem",
    "Scheduler",
    "SVR4Scheduler",
    "Thread",
    "ThreadState",
    "idle_profile",
    "linux_profile",
    "make_scheduler",
    "nt_tse_profile",
    "nt_workstation_profile",
    "run_idle_experiment",
    "sink_thread",
]
