"""The Linux 2.0 scheduler model, as the paper characterizes it.

Section 4.2.1: "The Linux kernel supports 'FIFO', 'round robin', and 'other'
scheduling classes, with priority values between -20 and +20 in each class.
Most processes run in the round robin class with a quantum of 10ms.  There
is no provision for changing the quantum length and no facility for
automatic priority boosting on GUI-related or foreground processes."

The model follows the paper's characterization:

* ``other`` (the default class): a single round-robin queue with a fixed
  10 ms quantum.  Woken and expired threads join the tail; nothing boosts
  an interactive thread past the CPU hogs ahead of it.  The ``nice`` value
  is carried but — matching the paper's analysis — does not reorder equal
  threads.
* ``fifo`` and ``rr``: POSIX real-time classes at static priorities 0–99,
  which preempt every ``other`` thread.  ``fifo`` runs to block;
  ``rr`` round-robins within its priority on a 10 ms quantum.  The
  simulator's interrupt/daemon machinery uses these.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..errors import SchedulerError
from ..obs import current_observation
from .scheduler import PriorityReadyQueues, Scheduler
from .thread import Thread

#: The Linux time slice the paper reports (§4.2.1).
LINUX_QUANTUM_MS = 10.0
#: Effectively-infinite quantum for SCHED_FIFO threads.
_FIFO_QUANTUM_MS = 1e12
#: Real-time priority levels.
RT_LEVELS = 100

_CLASSES = ("other", "rr", "fifo")


class LinuxScheduler(Scheduler):
    """Linux 2.0.36 as modelled by the paper: 10 ms RR, no interactivity help."""

    name = "linux"

    def __init__(self, quantum_ms: float = LINUX_QUANTUM_MS) -> None:
        super().__init__()
        if quantum_ms <= 0:
            raise SchedulerError("quantum must be positive")
        self.quantum_ms = quantum_ms
        self._other: Deque[Thread] = deque()
        self._rt = PriorityReadyQueues(RT_LEVELS)
        self._obs = current_observation()
        # Lazily-resolved counter handles: wakeups fire once per wake, the
        # hottest scheduler path, and must not pay a registry lookup each.
        self._wakeups_counter = None
        self._expiries_counter = None
        self._rt_preempt_counter = None

    # -- policy ----------------------------------------------------------------

    def register(self, thread: Thread) -> None:
        if thread.sched_class is None:
            thread.sched_class = "other"
        if thread.sched_class not in _CLASSES:
            raise SchedulerError(
                f"unknown Linux scheduling class {thread.sched_class!r}"
            )
        if thread.sched_class == "other":
            # base_priority doubles as the nice value (-20..+20); carried
            # for reporting but not used to reorder the RR queue, per the
            # paper's model of the 'other' class.
            if thread.base_priority is None:
                thread.base_priority = 0
            if not -20 <= thread.base_priority <= 20:
                raise SchedulerError(
                    f"nice value {thread.base_priority} out of [-20, 20]"
                )
            thread.priority = 0
        else:
            if thread.base_priority is None:
                thread.base_priority = 50
            if not 0 <= thread.base_priority < RT_LEVELS:
                raise SchedulerError(
                    f"rt priority {thread.base_priority} out of [0, {RT_LEVELS})"
                )
            thread.priority = thread.base_priority

    def _quantum_for(self, thread: Thread) -> float:
        if thread.sched_class == "fifo":
            return _FIFO_QUANTUM_MS
        return self.quantum_ms

    def enqueue_woken(self, thread: Thread) -> None:
        thread.remaining_quantum = self._quantum_for(thread)
        if self._obs is not None:
            counter = self._wakeups_counter
            if counter is None:
                counter = self._wakeups_counter = self._obs.metrics.counter(
                    "sched.linux.wakeups"
                )
            counter.value += 1
        if thread.sched_class == "other":
            self._other.append(thread)
        else:
            self._rt.push(thread)

    def enqueue_expired(self, thread: Thread) -> None:
        thread.remaining_quantum = self._quantum_for(thread)
        if self._obs is not None:
            counter = self._expiries_counter
            if counter is None:
                counter = self._expiries_counter = self._obs.metrics.counter(
                    "sched.linux.quantum_expiries"
                )
            counter.value += 1
        if thread.sched_class == "other":
            self._other.append(thread)
        else:
            self._rt.push(thread)

    def enqueue_preempted(self, thread: Thread) -> None:
        if thread.remaining_quantum <= 0:
            thread.remaining_quantum = self._quantum_for(thread)
        if thread.sched_class == "other":
            # Preemption only comes from real-time threads; the interrupted
            # process resumes where it left off, at the queue head.
            self._other.appendleft(thread)
        else:
            self._rt.push(thread, front=True)

    def select(self) -> Optional[Thread]:
        thread = self._rt.pop_best()
        if thread is None and self._other:
            thread = self._other.popleft()
        if thread is not None and thread.remaining_quantum <= 0:
            thread.remaining_quantum = self._quantum_for(thread)
        return thread

    def preempts(self, woken: Thread, running: Thread) -> bool:
        if woken.sched_class == "other":
            # No boosting, no preemption among timesharing threads: the
            # woken process waits its round-robin turn (§4.2.1).
            return False
        preempted = (
            running.sched_class == "other" or woken.priority > running.priority
        )
        if preempted and self._obs is not None:
            counter = self._rt_preempt_counter
            if counter is None:
                counter = self._rt_preempt_counter = self._obs.metrics.counter(
                    "sched.linux.rt_preemptions"
                )
            counter.value += 1
        return preempted

    def runnable_count(self) -> int:
        return len(self._other) + len(self._rt)

    def remove(self, thread: Thread) -> None:
        if thread.sched_class == "other":
            try:
                self._other.remove(thread)
            except ValueError:
                pass
        else:
            self._rt.remove(thread)
