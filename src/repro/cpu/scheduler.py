"""Scheduler interface and shared ready-queue machinery.

Concrete schedulers (:mod:`repro.cpu.nt`, :mod:`repro.cpu.linuxsched`,
:mod:`repro.cpu.svr4`) implement this interface; the :class:`repro.cpu.cpusim.CPU`
drives them.  The division of labour:

* the CPU owns thread state transitions and the passage of time;
* the scheduler owns ready queues, priorities, quanta, and preemption policy.
"""

from __future__ import annotations

import abc
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from ..errors import SchedulerError
from .thread import Thread

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cpusim import CPU


class Scheduler(abc.ABC):
    """Abstract scheduling policy.

    Lifecycle calls made by the CPU, in the order they occur:

    1. :meth:`attach` — once, when the CPU is built.
    2. :meth:`register` — for each new thread.
    3. :meth:`enqueue_woken` / :meth:`enqueue_expired` /
       :meth:`enqueue_preempted` — whenever a runnable thread must rejoin
       the ready queues.
    4. :meth:`select` — pop the next thread to run.  The scheduler must
       leave ``thread.remaining_quantum > 0``.
    5. :meth:`preempts` — consulted when a thread wakes while another runs.
    6. :meth:`on_block` — when the running thread exhausts its bursts.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.cpu: Optional["CPU"] = None

    def attach(self, cpu: "CPU") -> None:
        """Bind to the CPU (gives access to the simulator clock)."""
        self.cpu = cpu

    @property
    def sim(self):
        """The simulator clock, via the attached CPU."""
        if self.cpu is None:
            raise SchedulerError(f"{self.name} scheduler is not attached to a CPU")
        return self.cpu.sim

    # -- policy hooks ----------------------------------------------------------

    @abc.abstractmethod
    def register(self, thread: Thread) -> None:
        """Assign default priority/class state to a newly added thread."""

    @abc.abstractmethod
    def enqueue_woken(self, thread: Thread) -> None:
        """Thread transitioned BLOCKED → READY (this is where wake boosts go)."""

    @abc.abstractmethod
    def enqueue_expired(self, thread: Thread) -> None:
        """Thread used up its quantum and is still runnable."""

    @abc.abstractmethod
    def enqueue_preempted(self, thread: Thread) -> None:
        """Thread was preempted mid-quantum by a higher-priority wake."""

    @abc.abstractmethod
    def select(self) -> Optional[Thread]:
        """Pop and return the next thread to run, or None if nothing is ready."""

    @abc.abstractmethod
    def preempts(self, woken: Thread, running: Thread) -> bool:
        """Should *woken* immediately preempt *running*?"""

    @abc.abstractmethod
    def runnable_count(self) -> int:
        """Number of threads currently in the ready queues (excludes running)."""

    def on_block(self, thread: Thread) -> None:
        """Running thread blocked.  Default: no bookkeeping."""

    def remove(self, thread: Thread) -> None:
        """Thread was killed; drop any queued reference.  Default: best effort."""


class PriorityReadyQueues:
    """Multilevel FIFO ready queues indexed by integer priority.

    Shared by the NT and SVR4 schedulers.  ``higher_is_better`` priorities:
    :meth:`pop_best` returns the head of the highest non-empty level.
    """

    def __init__(self, levels: int) -> None:
        if levels <= 0:
            raise SchedulerError("need at least one priority level")
        self.levels = levels
        self._queues: List[Deque[Thread]] = [deque() for _ in range(levels)]
        self._count = 0

    def push(self, thread: Thread, *, front: bool = False) -> None:
        """Queue *thread* at its current ``thread.priority`` level."""
        priority = thread.priority
        if not 0 <= priority < self.levels:
            raise SchedulerError(
                f"priority {priority} out of range [0, {self.levels})"
            )
        if front:
            self._queues[priority].appendleft(thread)
        else:
            self._queues[priority].append(thread)
        self._count += 1

    def pop_best(self) -> Optional[Thread]:
        """Pop the head of the highest-priority non-empty queue."""
        for priority in range(self.levels - 1, -1, -1):
            queue = self._queues[priority]
            if queue:
                self._count -= 1
                return queue.popleft()
        return None

    def best_priority(self) -> Optional[int]:
        """Highest priority with a waiting thread, or None if all empty."""
        for priority in range(self.levels - 1, -1, -1):
            if self._queues[priority]:
                return priority
        return None

    def remove(self, thread: Thread) -> bool:
        """Remove *thread* wherever it is queued.  True if found."""
        for queue in self._queues:
            try:
                queue.remove(thread)
            except ValueError:
                continue
            self._count -= 1
            return True
        return False

    def ready_threads(self) -> List[Thread]:
        """All queued threads, best priority first (for starvation scans)."""
        out: List[Thread] = []
        for priority in range(self.levels - 1, -1, -1):
            out.extend(self._queues[priority])
        return out

    def __len__(self) -> int:
        return self._count

    def __contains__(self, thread: Thread) -> bool:
        return any(thread in queue for queue in self._queues)
