"""Multiprocessor composition: several CPUs behind one placement policy.

The paper's server-sizing context (§4.1.2, and the vendor white papers it
critiques) is multiprocessor TSE boxes.  :class:`SMPSystem` models an SMP
server as *k* CPUs, each running its own scheduler instance, with
**affinity placement**: a thread is assigned to the least-loaded processor
when it is added and stays there for life.  Both measured kernels strongly
preferred cache affinity (NT's ideal-processor mechanism, Linux's
``goodness()`` affinity bonus), and neither migrated threads aggressively
at this era, so no-migration placement is the right first-order model —
and it keeps each per-CPU scheduler exactly as validated in the
uniprocessor experiments.

The composition exposes the same surface experiments use on a single
:class:`~repro.cpu.cpusim.CPU` (``add_thread``/``submit``/``kill``/
``utilization``), so workloads run unchanged on either.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import SchedulerError
from ..sim.engine import Simulator
from .cpusim import CPU
from .scheduler import Scheduler
from .thread import Burst, Thread


class SMPSystem:
    """*k* processors with least-loaded, no-migration thread placement."""

    def __init__(
        self,
        sim: Simulator,
        scheduler_factory: Callable[[], Scheduler],
        cpu_count: int,
        *,
        name: str = "smp",
        speed: float = 1.0,
        context_switch_ms: float = 0.0,
    ) -> None:
        if cpu_count < 1:
            raise SchedulerError("need at least one CPU")
        self.sim = sim
        self.cpus: List[CPU] = [
            CPU(
                sim,
                scheduler_factory(),
                name=f"{name}:cpu{i}",
                speed=speed,
                context_switch_ms=context_switch_ms,
            )
            for i in range(cpu_count)
        ]
        self._assignment: Dict[int, CPU] = {}
        self._placed: Dict[str, int] = {cpu.name: 0 for cpu in self.cpus}

    # -- placement -----------------------------------------------------------

    def _least_loaded(self) -> CPU:
        """Fewest runnable threads; ties broken by fewest placements.

        The tie-break matters: a fleet of *blocked* interactive threads
        (all load 0 at placement time) must still spread across the
        processors.
        """
        return min(
            self.cpus,
            key=lambda cpu: (cpu.load, self._placed[cpu.name], cpu.name),
        )

    def cpu_of(self, thread: Thread) -> CPU:
        """The processor *thread* is bound to."""
        try:
            return self._assignment[thread.tid]
        except KeyError:
            raise SchedulerError(
                f"thread {thread.name!r} is not placed on this system"
            ) from None

    def add_thread(
        self, thread: Thread, *, cpu_index: Optional[int] = None
    ) -> CPU:
        """Place *thread* (least-loaded CPU, or an explicit ``cpu_index``)."""
        if thread.tid in self._assignment:
            raise SchedulerError(f"thread {thread.name!r} already placed")
        if cpu_index is None:
            cpu = self._least_loaded()
        else:
            if not 0 <= cpu_index < len(self.cpus):
                raise SchedulerError(f"no cpu {cpu_index}")
            cpu = self.cpus[cpu_index]
        cpu.add_thread(thread)
        self._assignment[thread.tid] = cpu
        self._placed[cpu.name] += 1
        return cpu

    # -- the CPU surface, routed by affinity ------------------------------------

    def submit(self, thread: Thread, burst: Burst) -> Burst:
        """Queue *burst* on *thread*'s home processor."""
        return self.cpu_of(thread).submit(thread, burst)

    def kill(self, thread: Thread) -> None:
        """Terminate *thread* and release its placement slot."""
        self.cpu_of(thread).kill(thread)
        del self._assignment[thread.tid]

    @property
    def cpu_count(self) -> int:
        """Number of processors in the system."""
        return len(self.cpus)

    @property
    def load(self) -> int:
        """Runnable threads across the whole system."""
        return sum(cpu.load for cpu in self.cpus)

    @property
    def run_queue_length(self) -> int:
        """Waiting (not running) threads across all processors."""
        return sum(cpu.run_queue_length for cpu in self.cpus)

    def utilization(self, t0: float, t1: float) -> float:
        """Mean utilization across processors over ``[t0, t1)``."""
        return sum(cpu.utilization(t0, t1) for cpu in self.cpus) / len(self.cpus)
