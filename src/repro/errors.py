"""Exception hierarchy for the repro package.

Every exception raised deliberately by this package derives from
:class:`ReproError`, so callers can catch package failures without also
swallowing programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly.

    Examples: scheduling an event in the past, running a simulator that has
    already been stopped, or re-triggering a one-shot signal.
    """


class SchedulerError(ReproError):
    """A CPU scheduler invariant was violated (bad priority, bad state)."""


class MemoryError_(ReproError):
    """A virtual-memory operation failed (out of frames and no victim, etc.).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class NetworkError(ReproError):
    """A network-substrate operation failed (oversized frame, closed link)."""


class ProtocolError(ReproError):
    """A remote-display protocol was driven incorrectly."""


class WorkloadError(ReproError):
    """A workload script was configured incorrectly."""


class ExperimentError(ReproError):
    """An experiment harness was configured or driven incorrectly."""


class AnalyticError(ReproError):
    """A closed-form model was given parameters outside its domain."""


class FleetError(ReproError):
    """A fleet composition was configured or driven incorrectly."""


class SloError(ReproError):
    """An SLO definition or tail-latency tracker was misused."""
