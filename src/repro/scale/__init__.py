"""The heavy-traffic hybrid tier: fluid background, exact probes.

The paper's load curves (Figures 8–9) stop at tens of users because every
keystroke is a discrete event; the north star asks what the same system
does under *millions*.  A million per-event sessions cannot fit through a
Python event loop at any kernel speed — the event count scales with the
population, not with the (capacity-bounded) traffic.  This package adds
the batch/fluid tier that breaks that coupling:

* **Background populations** are represented by vectorized processes
  (:class:`~repro.net.loadgen.BatchPoissonSampler`,
  :class:`~repro.net.loadgen.BatchOnOffSampler`,
  :class:`~repro.net.loadgen.BatchClosedLoopSampler`): per-coarse-tick
  aggregate packet counts drawn in a few numpy calls, offered to the
  network as fluid work (:class:`FluidBackground`) and to the schedulers
  as aggregated CPU bursts (:class:`BackgroundPopulation`).  Cost is
  O(ticks), independent of the population size.
* **Closed-loop populations** (:class:`ClosedLoopPopulation`) extend the
  tier to the paper's defining workload: typing sessions carried as
  counts over thinking / typing / blocked-on-echo states, whose offered
  load self-throttles through the link's own drain — the regime where
  the closed-network MVA models (:mod:`repro.analytic.mva`) apply and
  X(N) bends at the knee instead of driving the wire off a cliff.
* **Probe sessions** stay fully discrete: real packets through the real
  :class:`~repro.net.link.Link` FIFO (the unified workload process — see
  :meth:`~repro.net.link.Link._send_hybrid`), real keystrokes through the
  schedulers/VM/protocol stack in the fleet case, measured through the
  SLO / coordinated-omission-corrected path.  p99 and burn numbers stay
  exact *where we measure them*; only the background mass is approximated.

Validation is layered (see MODELING.md "Hybrid fluid/event tier"): a
differential-equivalence suite compares hybrid and exact runs at small
populations, statistics property tests pin the samplers to the per-event
generators' laws, and the analytic oracles — M/G/1 for the open tier,
exact MVA for the closed tier, the only independent checks at 10⁶
users — bound delay and throughput at moderate load.
"""

from .fluid import FluidBackground
from .hybrid import (
    ClosedCurveObservation,
    LoadCurveObservation,
    run_closed_curve_point,
    run_load_curve_point,
    simulate_hybrid_link_probe,
)
from .population import (
    BackgroundPopulation,
    ClosedLoopPopulation,
    ClosedLoopSpec,
    PopulationSpec,
)

__all__ = [
    "BackgroundPopulation",
    "ClosedCurveObservation",
    "ClosedLoopPopulation",
    "ClosedLoopSpec",
    "FluidBackground",
    "LoadCurveObservation",
    "PopulationSpec",
    "run_closed_curve_point",
    "run_load_curve_point",
    "simulate_hybrid_link_probe",
]
