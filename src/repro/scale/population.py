"""A background population deployed onto one server (or one bare link).

:class:`BackgroundPopulation` is the glue between the vectorized samplers
(:mod:`repro.net.loadgen`) and the simulated machine: it draws the whole
run's per-tick aggregate packet counts up front, offers the byte totals
to the link as fluid work (:class:`~repro.scale.fluid.FluidBackground`),
and — when the population also consumes CPU — submits one aggregated
:class:`~repro.cpu.thread.Burst` per tick to the server's scheduler
through a single background thread.  Total simulator cost is O(ticks)
regardless of how many users the spec describes.

The CPU side deliberately stays on the real scheduler: the probe
sessions' keystroke-echo threads then contend with the background demand
under the actual policy (NT boost, Linux goodness, SVR4 IA) rather than
an analytic approximation, which is what makes the fleet-scale frontier
(:func:`repro.scale.experiments.scale_fleet`) a statement about the
paper's schedulers and not just about a queueing formula.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetworkError
from ..net.loadgen import (
    DEFAULT_LOAD_PACKET_BYTES,
    BatchOnOffSampler,
    BatchPoissonSampler,
)
from .fluid import FluidBackground

#: Processes the batch tier knows how to sample.
PROCESSES = ("poisson", "onoff")


@dataclass(frozen=True)
class PopulationSpec:
    """A homogeneous background population, described statistically.

    ``per_user_bps`` is each user's long-run offered load in bits/s —
    thin-client update traffic is tens-to-hundreds of bits per second per
    idle-ish user and spikes during interaction, so specs pair a large
    ``users`` with a small ``per_user_bps``.  ``cpu_ms_per_packet`` maps
    each background packet to scheduler demand (0 disables the CPU side).
    """

    users: int
    per_user_bps: float
    process: str = "poisson"
    tick_ms: float = 50.0
    packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES
    on_fraction: float = 0.25
    cycle_ms: float = 500.0
    cpu_ms_per_packet: float = 0.0
    cpu_threads: int = 8

    def __post_init__(self) -> None:
        if self.users < 1:
            raise NetworkError("a population needs at least one user")
        if self.per_user_bps <= 0:
            raise NetworkError("per-user offered load must be positive")
        if self.process not in PROCESSES:
            raise NetworkError(f"unknown background process {self.process!r}")
        if self.cpu_ms_per_packet < 0:
            raise NetworkError("cpu_ms_per_packet cannot be negative")
        if self.cpu_threads < 1:
            raise NetworkError("a population needs at least one cpu thread")

    @property
    def per_user_rate_per_ms(self) -> float:
        """Packets per ms offered by one user."""
        return self.per_user_bps / 8.0 / 1000.0 / self.packet_bytes

    @property
    def offered_mbps(self) -> float:
        """Aggregate long-run offered load of the whole population."""
        return self.users * self.per_user_bps / 1e6

    def sampler(self, seed: int):
        """Build the vectorized sampler for this spec."""
        if self.process == "poisson":
            return BatchPoissonSampler(
                self.per_user_rate_per_ms,
                self.tick_ms,
                sources=self.users,
                seed=seed,
                packet_bytes=self.packet_bytes,
            )
        return BatchOnOffSampler(
            self.per_user_rate_per_ms,
            self.tick_ms,
            sources=self.users,
            seed=seed,
            on_fraction=self.on_fraction,
            cycle_ms=self.cycle_ms,
            packet_bytes=self.packet_bytes,
        )


class BackgroundPopulation:
    """One spec's worth of users, deployed as fluid + aggregate bursts.

    Parameters
    ----------
    sim, link:
        The simulator and the (quiet) link the population loads.
    spec:
        The statistical description of the population.
    duration_ms:
        How long the population offers load; ticks are presampled to
        cover exactly this horizon.
    seed:
        Sampler seed (derive one per population for independence).
    cpu:
        Optional scheduler; with ``spec.cpu_ms_per_packet > 0`` the
        population submits ``count * cpu_ms_per_packet`` of demand per
        tick through one background thread.
    """

    def __init__(self, sim, link, spec: PopulationSpec, *, duration_ms: float,
                 seed: int = 0, cpu=None) -> None:
        if duration_ms <= 0:
            raise NetworkError("population duration must be positive")
        self.sim = sim
        self.link = link
        self.spec = spec
        self.seed = seed
        n_ticks = int(duration_ms // spec.tick_ms)
        if n_ticks * spec.tick_ms < duration_ms:
            n_ticks += 1
        sampler = spec.sampler(seed)
        counts = sampler.tick_counts(n_ticks)
        self.tick_counts = counts
        self.packets_offered = int(counts.sum())
        self.fluid = FluidBackground(
            link, spec.tick_ms, counts * float(spec.packet_bytes)
        )
        self.cpu_threads = []
        if cpu is not None and spec.cpu_ms_per_packet > 0:
            from ..cpu.thread import Burst, Thread

            # Background users are interactive sessions too: their server
            # -side display work rides the same scheduling class the probe
            # echoes do (NT's GUI boost, SVR4's IA class).  The demand
            # fans across a worker pool rather than one aggregate thread:
            # under round-robin a single thread costs a competitor at
            # most one quantum regardless of its backlog, so collapsing a
            # population into one thread would erase the run-queue
            # contention that N real sessions exert (§4's axis).
            for worker in range(spec.cpu_threads):
                thread = Thread(
                    f"background:{link.name}:{worker}",
                    gui=True,
                    foreground=True,
                    session="background",
                )
                cpu.add_thread(thread)
                self.cpu_threads.append(thread)
            share = spec.cpu_ms_per_packet / spec.cpu_threads
            demands = counts * share
            index = [0]
            pool = self.cpu_threads

            def submit_tick() -> None:
                i = index[0]
                if i >= n_ticks:
                    return
                index[0] = i + 1
                demand = float(demands[i])
                if demand > 0.0:
                    for thread in pool:
                        cpu.submit(thread, Burst(demand))

            # First tick's demand lands at t=0+tick (work arrives during the
            # tick, billed at its close), then every tick thereafter.
            sim.every(spec.tick_ms, submit_tick)

    @property
    def offered_mbps(self) -> float:
        """Aggregate long-run offered load of the deployed population."""
        return self.spec.offered_mbps

    def utilization(self, t0: float, t1: float) -> float:
        """Background offered load over ``[t0, t1)`` vs link capacity."""
        return self.fluid.utilization(t0, t1)
