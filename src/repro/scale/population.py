"""A background population deployed onto one server (or one bare link).

:class:`BackgroundPopulation` is the glue between the vectorized samplers
(:mod:`repro.net.loadgen`) and the simulated machine: it draws the whole
run's per-tick aggregate packet counts up front, offers the byte totals
to the link as fluid work (:class:`~repro.scale.fluid.FluidBackground`),
and — when the population also consumes CPU — submits one aggregated
:class:`~repro.cpu.thread.Burst` per tick to the server's scheduler
through a single background thread.  Total simulator cost is O(ticks)
regardless of how many users the spec describes.

The CPU side deliberately stays on the real scheduler: the probe
sessions' keystroke-echo threads then contend with the background demand
under the actual policy (NT boost, Linux goodness, SVR4 IA) rather than
an analytic approximation, which is what makes the fleet-scale frontier
(:func:`repro.scale.experiments.scale_fleet`) a statement about the
paper's schedulers and not just about a queueing formula.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import NetworkError
from ..net.loadgen import (
    DEFAULT_KEYSTROKE_BYTES,
    DEFAULT_LOAD_PACKET_BYTES,
    BatchClosedLoopSampler,
    BatchOnOffSampler,
    BatchPoissonSampler,
)
from .fluid import FluidBackground

#: Processes the batch tier knows how to sample.
PROCESSES = ("poisson", "onoff")

#: Wire bytes of one echoed display update (matches the fleet's frames).
DEFAULT_ECHO_BYTES = 200


@dataclass(frozen=True)
class PopulationSpec:
    """A homogeneous background population, described statistically.

    ``per_user_bps`` is each user's long-run offered load in bits/s —
    thin-client update traffic is tens-to-hundreds of bits per second per
    idle-ish user and spikes during interaction, so specs pair a large
    ``users`` with a small ``per_user_bps``.  ``cpu_ms_per_packet`` maps
    each background packet to scheduler demand (0 disables the CPU side).
    """

    users: int
    per_user_bps: float
    process: str = "poisson"
    tick_ms: float = 50.0
    packet_bytes: int = DEFAULT_LOAD_PACKET_BYTES
    on_fraction: float = 0.25
    cycle_ms: float = 500.0
    cpu_ms_per_packet: float = 0.0
    cpu_threads: int = 8

    def __post_init__(self) -> None:
        if self.users < 1:
            raise NetworkError("a population needs at least one user")
        if self.per_user_bps <= 0:
            raise NetworkError("per-user offered load must be positive")
        if self.process not in PROCESSES:
            raise NetworkError(f"unknown background process {self.process!r}")
        if self.cpu_ms_per_packet < 0:
            raise NetworkError("cpu_ms_per_packet cannot be negative")
        if self.cpu_threads < 1:
            raise NetworkError("a population needs at least one cpu thread")

    @property
    def per_user_rate_per_ms(self) -> float:
        """Packets per ms offered by one user."""
        return self.per_user_bps / 8.0 / 1000.0 / self.packet_bytes

    @property
    def offered_mbps(self) -> float:
        """Aggregate long-run offered load of the whole population."""
        return self.users * self.per_user_bps / 1e6

    def sampler(self, seed: int):
        """Build the vectorized sampler for this spec."""
        if self.process == "poisson":
            return BatchPoissonSampler(
                self.per_user_rate_per_ms,
                self.tick_ms,
                sources=self.users,
                seed=seed,
                packet_bytes=self.packet_bytes,
            )
        return BatchOnOffSampler(
            self.per_user_rate_per_ms,
            self.tick_ms,
            sources=self.users,
            seed=seed,
            on_fraction=self.on_fraction,
            cycle_ms=self.cycle_ms,
            packet_bytes=self.packet_bytes,
        )


class BackgroundPopulation:
    """One spec's worth of users, deployed as fluid + aggregate bursts.

    Parameters
    ----------
    sim, link:
        The simulator and the (quiet) link the population loads.
    spec:
        The statistical description of the population.
    duration_ms:
        How long the population offers load; ticks are presampled to
        cover exactly this horizon.
    seed:
        Sampler seed (derive one per population for independence).
    cpu:
        Optional scheduler; with ``spec.cpu_ms_per_packet > 0`` the
        population submits ``count * cpu_ms_per_packet`` of demand per
        tick through one background thread.
    """

    def __init__(self, sim, link, spec: PopulationSpec, *, duration_ms: float,
                 seed: int = 0, cpu=None) -> None:
        if duration_ms <= 0:
            raise NetworkError("population duration must be positive")
        self.sim = sim
        self.link = link
        self.spec = spec
        self.seed = seed
        n_ticks = int(duration_ms // spec.tick_ms)
        if n_ticks * spec.tick_ms < duration_ms:
            n_ticks += 1
        sampler = spec.sampler(seed)
        counts = sampler.tick_counts(n_ticks)
        self.tick_counts = counts
        self.packets_offered = int(counts.sum())
        self.fluid = FluidBackground(
            link, spec.tick_ms, counts * float(spec.packet_bytes)
        )
        self.cpu_threads = []
        if cpu is not None and spec.cpu_ms_per_packet > 0:
            from ..cpu.thread import Burst, Thread

            # Background users are interactive sessions too: their server
            # -side display work rides the same scheduling class the probe
            # echoes do (NT's GUI boost, SVR4's IA class).  The demand
            # fans across a worker pool rather than one aggregate thread:
            # under round-robin a single thread costs a competitor at
            # most one quantum regardless of its backlog, so collapsing a
            # population into one thread would erase the run-queue
            # contention that N real sessions exert (§4's axis).
            for worker in range(spec.cpu_threads):
                thread = Thread(
                    f"background:{link.name}:{worker}",
                    gui=True,
                    foreground=True,
                    session="background",
                )
                cpu.add_thread(thread)
                self.cpu_threads.append(thread)
            share = spec.cpu_ms_per_packet / spec.cpu_threads
            # Materialize the per-tick demands as plain floats once: the
            # submit callback runs every tick on the hot path, and plain
            # list indexing avoids boxing a fresh numpy scalar per tick.
            demands = (counts * share).tolist()
            index = [0]
            pool = self.cpu_threads

            def submit_tick() -> None:
                i = index[0]
                if i >= n_ticks:
                    return
                index[0] = i + 1
                demand = demands[i]
                if demand > 0.0:
                    for thread in pool:
                        cpu.submit(thread, Burst(demand))

            # First tick's demand lands at t=0+tick (work arrives during the
            # tick, billed at its close), then every tick thereafter.
            sim.every(spec.tick_ms, submit_tick)

    @property
    def offered_mbps(self) -> float:
        """Aggregate long-run offered load of the deployed population."""
        return self.spec.offered_mbps

    def utilization(self, t0: float, t1: float) -> float:
        """Background offered load over ``[t0, t1)`` vs link capacity."""
        return self.fluid.utilization(t0, t1)


@dataclass(frozen=True)
class ClosedLoopSpec:
    """A homogeneous *closed-loop* typing population.

    Unlike :class:`PopulationSpec`, these users do not offer load at a
    fixed rate: each cycles think → typing burst → blocked-on-echo, so
    the offered load **self-throttles** when the echo path slows down —
    the paper's actual workload, and the regime where closed-network
    models (MVA) apply.  ``cpu_ms_per_echo`` maps each keystroke's
    server-side display work to scheduler demand (0 disables the CPU
    side); ``burst_keys`` is the mean geometric burst length.
    """

    users: int
    think_ms: float = 10_000.0
    type_ms: float = 300.0
    burst_keys: float = 20.0
    tick_ms: float = 10.0
    keystroke_bytes: int = DEFAULT_KEYSTROKE_BYTES
    echo_bytes: int = DEFAULT_ECHO_BYTES
    cpu_ms_per_echo: float = 0.0
    cpu_threads: int = 8

    def __post_init__(self) -> None:
        if self.users < 1:
            raise NetworkError("a population needs at least one user")
        if self.think_ms <= 0 or self.type_ms <= 0:
            raise NetworkError("think and type means must be positive")
        if self.burst_keys < 1.0:
            raise NetworkError("burst_keys is a mean burst length, must be >= 1")
        if self.tick_ms <= 0:
            raise NetworkError("tick_ms must be positive")
        if self.keystroke_bytes <= 0 or self.echo_bytes <= 0:
            raise NetworkError("keystroke and echo frames need positive size")
        if self.cpu_ms_per_echo < 0:
            raise NetworkError("cpu_ms_per_echo cannot be negative")
        if self.cpu_threads < 1:
            raise NetworkError("a population needs at least one cpu thread")

    @property
    def round_bytes(self) -> int:
        """Wire bytes one keystroke-echo round puts on the shared link."""
        return self.keystroke_bytes + self.echo_bytes

    @property
    def nominal_keys_per_ms(self) -> float:
        """Zero-latency keystroke rate of the whole population (upper bound).

        One cycle spends ``think_ms`` thinking plus ``burst_keys·type_ms``
        typing and emits ``burst_keys`` keystrokes; actual throughput is
        lower because blocked-on-echo time stretches the cycle — that gap
        *is* the closed-loop effect the tier reproduces.
        """
        cycle_ms = self.think_ms + self.burst_keys * self.type_ms
        return self.users * self.burst_keys / cycle_ms

    @property
    def offered_mbps(self) -> float:
        """Zero-latency aggregate offered load (keystrokes + echoes)."""
        return self.nominal_keys_per_ms * self.round_bytes * 8.0 / 1000.0

    def sampler(self, seed: int) -> BatchClosedLoopSampler:
        """Build the count-vector sampler for this spec.

        The sampler's own echo model is never consulted when a
        :class:`ClosedLoopPopulation` drives it (completions come from the
        link feedback), but ``echo_ms=tick_ms`` gives the stationary
        starting split a one-tick nominal echo — the floor the tick
        quantization enforces — so the chain starts near its operating
        point instead of fully cold.
        """
        return BatchClosedLoopSampler(
            self.think_ms,
            self.type_ms,
            self.tick_ms,
            self.tick_ms,
            sources=self.users,
            seed=seed,
            burst_keys=self.burst_keys,
            echo_servers=None,
            keystroke_bytes=self.keystroke_bytes,
        )


class ClosedLoopPopulation:
    """N closed-loop typing sessions as counts + fluid + aggregate bursts.

    The open :class:`BackgroundPopulation` presamples its whole horizon;
    a closed-loop population cannot, because each tick's keystrokes
    depend on the echo latency earlier ticks produced.  Instead the
    driver runs once per tick boundary:

    1. **Complete** pending echo batches whose estimated completion time
       has arrived, unblocking that many sessions in the count chain.
    2. **Step** the :class:`BatchClosedLoopSampler` one tick — binomial
       think→type and keystroke draws — yielding this tick's keystrokes.
    3. **Offer** the keystroke + echo bytes into the streaming
       :class:`FluidBackground` (probes then see them in ``W(t)``) and
       submit the aggregated CPU demand to the real scheduler.
    4. **Estimate** when this tick's batch of echoes completes, mirroring
       the link's own hybrid FIFO arithmetic
       (:meth:`repro.net.link.Link._send_hybrid`): keystroke waits the
       unfinished work ``W(t)``, transits, crosses the scheduler (a
       private backlog integrator over the population's own demand plus
       ``cpu_ms_per_echo`` service), and the echo waits ``W`` again
       coming back.  Completion times are clamped monotone — the wire is
       FIFO, a later batch can never finish first.

    The estimate is the tier's one new approximation: responses quantize
    to tick boundaries (≥ 1 tick floor) and both directions read ``W``
    at the emission tick.  Both errors vanish as ``tick_ms`` shrinks;
    the differential suite pins them against exact per-session loops at
    N=32 and the MVA oracle checks X(N)/R(N) at scale.

    Total cost is O(ticks) scalar work — no per-tick numpy allocations —
    independent of how many sessions the spec describes.
    """

    def __init__(self, sim, link, spec: ClosedLoopSpec, *, duration_ms: float,
                 seed: int = 0, cpu=None) -> None:
        if duration_ms <= 0:
            raise NetworkError("population duration must be positive")
        self.sim = sim
        self.link = link
        self.spec = spec
        self.seed = seed
        n_ticks = int(duration_ms // spec.tick_ms)
        if n_ticks * spec.tick_ms < duration_ms:
            n_ticks += 1
        self.n_ticks = n_ticks
        self.sampler = spec.sampler(seed)
        self.fluid = FluidBackground(link, spec.tick_ms, ())
        #: Pending (completion_time_ms, sessions) echo batches, FIFO.
        self._pending = deque()
        self._last_done_ms = 0.0
        self._cpu_backlog_ms = 0.0  # the population's own scheduler backlog
        self._cpu_demand_prev = 0.0  # aggregate CPU demand of the last tick
        self._tick_index = 0
        # One keystroke-echo round's wire time, both directions.
        self._round_wire_ms = spec.round_bytes / link.bytes_per_ms
        self._prop_ms = 2.0 * link.propagation_ms
        self.cpu = cpu if spec.cpu_ms_per_echo > 0 else None
        self.cpu_threads = []
        if self.cpu is not None:
            from ..cpu.thread import Thread

            # Same worker-pool shape as BackgroundPopulation: background
            # sessions contend on the real scheduler so probe echoes pay
            # real run-queue contention, not an analytic proxy.
            for worker in range(spec.cpu_threads):
                thread = Thread(
                    f"closedloop:{link.name}:{worker}",
                    gui=True,
                    foreground=True,
                    session="background",
                )
                self.cpu.add_thread(thread)
                self.cpu_threads.append(thread)
        # Tick 0 fires at t=now: the fluid tick must be appended at its
        # *start* so probes inside the tick see the inflow.
        sim.every(spec.tick_ms, self._on_tick, start=0.0)

    def _on_tick(self) -> None:
        if self._tick_index >= self.n_ticks:
            return
        self._tick_index += 1
        now = self.sim.now
        spec = self.spec
        tick = spec.tick_ms
        # 1. Unblock sessions whose estimated echo completion has passed.
        pending = self._pending
        done = 0
        while pending and pending[0][0] <= now:
            done += pending.popleft()[1]
        # 2. One binomial step of the count chain.
        keys, _ = self.sampler.step(completions=done)
        # 3a. This tick's wire bytes, smeared over [now, now + tick).
        self.fluid.offer_tick(keys * spec.round_bytes)
        # 3b. Aggregated scheduler demand: the previous tick's keystrokes
        # are billed at their tick's close, like the open population.
        if self.cpu is not None:
            if self._cpu_demand_prev > 0.0:
                from ..cpu.thread import Burst

                share = self._cpu_demand_prev / spec.cpu_threads
                for thread in self.cpu_threads:
                    self.cpu.submit(thread, Burst(share))
            # The aggregated-scheduler estimate: one CPU serves the
            # population's whole demand (the worker pool shapes *who*
            # contends, not how much capacity exists), so the private
            # backlog drains at one tick of service per tick.
            backlog = self._cpu_backlog_ms + self._cpu_demand_prev - tick
            self._cpu_backlog_ms = backlog if backlog > 0.0 else 0.0
            self._cpu_demand_prev = keys * spec.cpu_ms_per_echo
        # 4. Estimate this batch's echo completion via the hybrid FIFO
        # arithmetic: W(now) each way + wire service + propagation + the
        # scheduler crossing.
        if keys:
            wait = self.fluid.queueing_delay_ms(now)
            response = (
                2.0 * wait
                + self._round_wire_ms
                + self._prop_ms
                + self._cpu_backlog_ms
                + spec.cpu_ms_per_echo
            )
            done_at = now + response
            if done_at < self._last_done_ms:
                done_at = self._last_done_ms  # FIFO: no overtaking
            self._last_done_ms = done_at
            pending.append((done_at, keys))

    # -- reporting ---------------------------------------------------------

    @property
    def offered_mbps(self) -> float:
        """Zero-latency aggregate offered load of the deployed spec."""
        return self.spec.offered_mbps

    @property
    def keystrokes_total(self) -> int:
        """Keystrokes the population has emitted so far."""
        return self.sampler.keystrokes_total

    @property
    def completions_total(self) -> int:
        """Echo completions delivered back to the population so far."""
        return self.sampler.completions_total

    @property
    def throughput_per_ms(self) -> float:
        """Echo completions per simulated ms (the MVA X, per population)."""
        return self.sampler.throughput_per_ms

    @property
    def mean_blocked(self) -> float:
        """Time-average sessions blocked on echo (Little's L)."""
        return self.sampler.mean_blocked

    @property
    def backlog_ms(self) -> float:
        """Peak link backlog the population's fluid inflow produced."""
        return self.fluid.peak_backlog_ms

    def utilization(self, t0: float, t1: float) -> float:
        """Background offered load over ``[t0, t1)`` vs link capacity."""
        return self.fluid.utilization(t0, t1)
