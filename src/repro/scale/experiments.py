"""Registered scale experiments: load curves and fleets at real populations.

Four scenarios take the hybrid tier through the same executor pipeline as
every figure (``--jobs``, result cache, tracing all compose):

``scale_load_curve``
    Figures 8–9 reshaped for the north star: ping RTT versus *population*
    on the shared link, 10⁴ to 10⁶ background users offering thin-client
    trickle, both arrival processes.  The background is fluid
    (cost independent of the user count); the probes are exact packets,
    so the p99/p99.9 columns and the 10 ms budget burn are measured, not
    modeled.  This is the farm-sizing curve Gray's *Locally Served
    Network Computers* asks for (PAPERS.md).

``scale_closed_curve``
    The same wire under the paper's *actual* workload: 10³–10⁶
    closed-loop typing sessions that think, type, and block on their
    echoes, carried as count vectors.  Offered load self-throttles, so
    instead of a latency cliff the curve shows the closed-network knee:
    per-session throughput X(N)/N stays flat until the MVA saturation
    population N* = (Z+D)/D, then decays as 1/N while the wire pins at
    capacity.  The table overlays the asymptotic MVA bounds
    (:mod:`repro.analytic.mva` — Gunther's *The X-Files* models), the
    independent oracle at populations no exact run can reach.

``scale_fleet``
    The capacity frontier rerun at realistic population sizes: each
    server in a co-safe fleet carries a vectorized background population
    (LAN bytes + scheduler demand) while two pinned probe sessions per
    server type through the full kernel/VM/protocol stack.  Corrected
    p99 against the 100 ms interaction budget marks the frontier —
    background users per server a server can hide while staying
    perceptually instant.

``scale_closed_fleet``
    The frontier with closed-loop backgrounds: the same co-safe fleet,
    but each server's population is typing sessions whose keystroke rate
    collapses onto the service rate once the CPU saturates — utilization
    clamps at the ceiling instead of running away, which is how real
    interactive farms degrade (Gray's NC-farm sizing, sessions-per-server
    edition).

All sweeps are byte-identical across serial, ``--jobs N``, and
cold/warm-cache runs on either kernel and either recorder — the
``scale-determinism`` CI job diffs exactly that matrix.  Faults do not
compose into these scenarios (the background is offered load, not a
fault target); the sweep name still carries the fault suffix so cache
entries stay distinct.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from ..core.registry import experiment
from ..core.report import format_series, format_table, write_csv

#: Arrival processes raced by ``scale_load_curve`` (output row order).
LOAD_CURVE_PROCESSES = ["poisson", "onoff"]

#: Background population sizes on the load curve's x-axis.
LOAD_CURVE_USERS = [10_000, 100_000, 300_000, 600_000, 900_000, 1_000_000]

#: Per-user offered load: a thin-client trickle.  9 bits/s per user puts
#: one million users at 90% of the 10 Mbps wire — the curve sweeps the
#: whole stable range and ends at the knee, like Figure 8 does.
LOAD_CURVE_PER_USER_BPS = 9.0

#: The shared medium (the paper's testbed wire).
LOAD_CURVE_BANDWIDTH_MBPS = 10.0

#: Fluid tick: a sixth of a 1500-byte frame's service time, where the
#: differential suite shows the smoothing bias is inside the noise.
LOAD_CURVE_TICK_MS = 0.2

#: Burst shape for the on-off rows (matches ``slo_burst``).
LOAD_CURVE_ON_FRACTION = 0.25
LOAD_CURVE_CYCLE_MS = 500.0

#: Probe cadence and measurement window.
LOAD_CURVE_PROBE_INTERVAL_MS = 5.0
LOAD_CURVE_DURATION_MS = 30_000.0
LOAD_CURVE_WARMUP_MS = 1_000.0

#: ``scale_closed_curve``: closed-loop sessions on the curve's x-axis.
CLOSED_CURVE_USERS = [1_000, 10_000, 100_000, 300_000, 600_000, 1_000_000]

#: A million interactive sessions need a backbone, not the testbed hub:
#: on the 100 Mbps wire a 264-byte round (64 up + 200 back) costs
#: D = 0.0211 ms, and one interaction per ~6.3 s cycle (6 s thinking,
#: 300 ms composing) puts the MVA knee at N* ≈ 298k sessions — inside
#: the sweep, so the curve shows both regimes.  Beyond the knee a closed
#: network parks N − N* sessions in the queue (~15 s of backlog at the
#: million), which is why the horizon is a full simulated minute: probes
#: launched early enough must live to report those RTTs.
CLOSED_CURVE_BANDWIDTH_MBPS = 100.0
CLOSED_CURVE_THINK_MS = 6_000.0
CLOSED_CURVE_TYPE_MS = 300.0
CLOSED_CURVE_BURST_KEYS = 1.0
CLOSED_CURVE_TICK_MS = 1.0
CLOSED_CURVE_PROBE_INTERVAL_MS = 5.0
CLOSED_CURVE_DURATION_MS = 60_000.0
CLOSED_CURVE_WARMUP_MS = 5_000.0

#: ``scale_fleet`` shape: a small co-safe fleet, every server carrying a
#: background population and two pinned probe sessions.
FLEET_SERVERS = 2
FLEET_PROBES_PER_SERVER = 2
FLEET_BACKBONE_MBPS = 100.0

#: Background users per server on the frontier's x-axis: ~23%, 58%, and
#: 91% of server CPU, then just past saturation — the frontier's cliff.
FLEET_BG_USERS = [20_000, 50_000, 80_000, 95_000]

#: Arrival processes raced across the frontier (row order).
FLEET_PROCESSES = ["poisson", "onoff"]

FLEET_PER_USER_BPS = 100.0
#: Thin-client display updates, not full frames.
FLEET_PACKET_BYTES = 200
#: Scheduler demand per background packet: protocol + display work the
#: server burns per update, aggregated per tick across the worker pool.
FLEET_CPU_MS_PER_PACKET = 0.18
FLEET_CPU_THREADS = 8
FLEET_TICK_MS = 10.0

#: The 100 ms perception threshold at p99 (same contract as
#: ``fleet_capacity`` and the chaos grid).
FLEET_BUDGET_MS = 100.0
FLEET_SLO_TARGET = 0.99

FLEET_WARMUP_MS = 1_500.0
FLEET_MEASURE_MS = 8_000.0

#: ``scale_closed_fleet``: typing sessions per server on the x-axis.
#: One burst of ~2 keystrokes per ~30.6 s cycle; at 0.18 ms of display
#: work per echo the sweep takes server CPU from ~24% to ~112% — the
#: same span the open frontier covers, but self-throttling.
CLOSED_FLEET_BG_SESSIONS = [20_000, 50_000, 80_000, 95_000]
CLOSED_FLEET_THINK_MS = 30_000.0
CLOSED_FLEET_TYPE_MS = 300.0
CLOSED_FLEET_BURST_KEYS = 2.0
CLOSED_FLEET_KEYSTROKE_BYTES = 64
#: Thin echoes keep the per-server LAN under capacity (~81% at the top
#: cell) so the closed frontier is CPU-bound like the open one.
CLOSED_FLEET_ECHO_BYTES = 100
CLOSED_FLEET_CPU_MS_PER_ECHO = 0.18


def _percentile(samples: List[float], pct: float) -> float:
    """Nearest-rank percentile of *samples* (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = int(round(pct / 100.0 * (len(ordered) - 1)))
    return ordered[min(rank, len(ordered) - 1)]


def _scale_load_curve_point(
    point: Tuple[str, int],
    *,
    seed: int,
) -> Tuple[int, float, float, float, float, float, float, float, float]:
    """One curve cell: (n, offered, util, mean, p50, p99, p99.9, viol, burn)."""
    from ..sim.rng import derive_seed
    from .hybrid import run_load_curve_point

    process, users = point
    obs = run_load_curve_point(
        users,
        process=process,
        per_user_bps=LOAD_CURVE_PER_USER_BPS,
        bandwidth_mbps=LOAD_CURVE_BANDWIDTH_MBPS,
        tick_ms=LOAD_CURVE_TICK_MS,
        on_fraction=LOAD_CURVE_ON_FRACTION,
        cycle_ms=LOAD_CURVE_CYCLE_MS,
        probe_interval_ms=LOAD_CURVE_PROBE_INTERVAL_MS,
        duration_ms=LOAD_CURVE_DURATION_MS,
        warmup_ms=LOAD_CURVE_WARMUP_MS,
        seed=derive_seed(seed, f"scale_load_curve:{process}:{users}"),
        mode="hybrid",
    )
    return (
        obs.samples,
        obs.offered_mbps,
        obs.utilization,
        obs.rtt_mean_ms,
        obs.rtt_p50_ms,
        obs.rtt_p99_ms,
        obs.rtt_p999_ms,
        obs.violation_rate,
        obs.budget_burn,
    )


def _scale_closed_curve_point(
    users: int,
    *,
    seed: int,
) -> Tuple[int, float, float, float, float, float, float, float, float, float]:
    """One closed cell: (n, util, p50, p99, X/s, X/s/session, R, mvaX/s, viol, burn)."""
    from ..sim.rng import derive_seed
    from .hybrid import run_closed_curve_point

    obs = run_closed_curve_point(
        users,
        think_ms=CLOSED_CURVE_THINK_MS,
        type_ms=CLOSED_CURVE_TYPE_MS,
        burst_keys=CLOSED_CURVE_BURST_KEYS,
        bandwidth_mbps=CLOSED_CURVE_BANDWIDTH_MBPS,
        tick_ms=CLOSED_CURVE_TICK_MS,
        probe_interval_ms=CLOSED_CURVE_PROBE_INTERVAL_MS,
        duration_ms=CLOSED_CURVE_DURATION_MS,
        warmup_ms=CLOSED_CURVE_WARMUP_MS,
        seed=derive_seed(seed, f"scale_closed_curve:{users}"),
        mode="hybrid",
    )
    return (
        obs.samples,
        obs.utilization,
        obs.rtt_p50_ms,
        obs.rtt_p99_ms,
        obs.throughput_per_ms * 1000.0,
        obs.per_session_keys_per_s,
        obs.response_ms,
        obs.mva_throughput_per_ms * 1000.0,
        obs.violation_rate,
        obs.budget_burn,
    )


def _drive_probe_fleet(fleet, measure_ms: float):
    """Pin probe sessions, warm up, attach a tracker, and measure.

    Mirrors the slo experiments' driver, with placement pinned: probe
    ``p<server>.<k>`` lands on server ``<server>``, so every server's
    background population is measured through a session *on that server*.
    """
    from ..slo.budget import LatencyBudget, SloTracker

    rates = [2.0, 4.0]
    for index in range(len(fleet.servers)):
        for k in range(FLEET_PROBES_PER_SERVER):
            fleet.open_session(
                f"p{index}.{k}",
                rate_hz=rates[k % len(rates)],
                display_chars=8,
                pin_server=index,
            )
    fleet.run(FLEET_WARMUP_MS)
    for session in fleet.sessions.values():
        session.latencies_ms.clear()
        session.intended_latencies_ms.clear()
    tracker = SloTracker(
        LatencyBudget("interaction", FLEET_BUDGET_MS, target=FLEET_SLO_TARGET)
    )
    fleet.slo_tracker = tracker
    fleet.run(measure_ms)
    return tracker


def _scale_fleet_point(
    cell: Tuple[str, int],
    *,
    seed: int,
) -> Tuple[int, float, float, float, float, float, float]:
    """One frontier cell: (n, cpu util, lan util, p50, p99, viol, burn)."""
    from ..core.server import ServerConfig
    from ..fleet.cluster import Fleet, FleetConfig
    from ..sim.rng import derive_seed
    from .population import PopulationSpec

    process, bg_users = cell
    config = FleetConfig(
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=FLEET_SERVERS,
        placement="round_robin",
        admission_mode="reject",
        capacity_per_server=FLEET_PROBES_PER_SERVER,
        backbone_mbps=FLEET_BACKBONE_MBPS,
        co_safe_sessions=True,
    )
    fleet = Fleet(
        config, seed=derive_seed(seed, f"scale_fleet:{process}:{bg_users}")
    )
    spec = PopulationSpec(
        users=bg_users,
        per_user_bps=FLEET_PER_USER_BPS,
        process=process,
        tick_ms=FLEET_TICK_MS,
        packet_bytes=FLEET_PACKET_BYTES,
        cpu_ms_per_packet=FLEET_CPU_MS_PER_PACKET,
        cpu_threads=FLEET_CPU_THREADS,
    )
    horizon = FLEET_WARMUP_MS + FLEET_MEASURE_MS
    for index in range(FLEET_SERVERS):
        fleet.attach_background(index, spec, horizon_ms=horizon)
    tracker = _drive_probe_fleet(fleet, FLEET_MEASURE_MS)
    corrected = fleet.corrected_latencies_ms()
    report = fleet.report(t0=FLEET_WARMUP_MS)
    lan_util = fleet.backgrounds[0].utilization(FLEET_WARMUP_MS, horizon)
    return (
        len(corrected),
        float(report["servers"][0]["cpu_utilization"]),
        lan_util,
        _percentile(corrected, 50.0),
        _percentile(corrected, 99.0),
        tracker.violation_rate,
        tracker.budget_burn,
    )


def _scale_closed_fleet_point(
    bg_sessions: int,
    *,
    seed: int,
) -> Tuple[int, float, float, float, float, float, float, float]:
    """One closed frontier cell: (n, cpu, lan, keys/s, p50, p99, viol, burn)."""
    from ..core.server import ServerConfig
    from ..fleet.cluster import Fleet, FleetConfig
    from ..sim.rng import derive_seed
    from .population import ClosedLoopSpec

    config = FleetConfig(
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=FLEET_SERVERS,
        placement="round_robin",
        admission_mode="reject",
        capacity_per_server=FLEET_PROBES_PER_SERVER,
        backbone_mbps=FLEET_BACKBONE_MBPS,
        co_safe_sessions=True,
    )
    fleet = Fleet(
        config, seed=derive_seed(seed, f"scale_closed_fleet:{bg_sessions}")
    )
    spec = ClosedLoopSpec(
        users=bg_sessions,
        think_ms=CLOSED_FLEET_THINK_MS,
        type_ms=CLOSED_FLEET_TYPE_MS,
        burst_keys=CLOSED_FLEET_BURST_KEYS,
        tick_ms=FLEET_TICK_MS,
        keystroke_bytes=CLOSED_FLEET_KEYSTROKE_BYTES,
        echo_bytes=CLOSED_FLEET_ECHO_BYTES,
        cpu_ms_per_echo=CLOSED_FLEET_CPU_MS_PER_ECHO,
        cpu_threads=FLEET_CPU_THREADS,
    )
    horizon = FLEET_WARMUP_MS + FLEET_MEASURE_MS
    for index in range(FLEET_SERVERS):
        fleet.attach_background(index, spec, horizon_ms=horizon)
    tracker = _drive_probe_fleet(fleet, FLEET_MEASURE_MS)
    corrected = fleet.corrected_latencies_ms()
    report = fleet.report(t0=FLEET_WARMUP_MS)
    lan_util = fleet.backgrounds[0].utilization(FLEET_WARMUP_MS, horizon)
    return (
        len(corrected),
        float(report["servers"][0]["cpu_utilization"]),
        lan_util,
        float(report["background_keys_per_s"]) / FLEET_SERVERS,
        _percentile(corrected, 50.0),
        _percentile(corrected, 99.0),
        tracker.violation_rate,
        tracker.budget_burn,
    )


def _scale_load_curve(ctx) -> None:
    """Sweep both processes over the population axis; print the knee."""
    grid = [
        (process, users)
        for process in LOAD_CURVE_PROCESSES
        for users in LOAD_CURVE_USERS
    ]
    points = ctx.executor.map(
        "scale_load_curve" + ctx.fault_suffix,
        partial(_scale_load_curve_point, seed=ctx.seed),
        grid,
        seed=ctx.seed,
    )
    by_cell = dict(zip(grid, points))
    rows = [
        (
            process,
            users,
            f"{offered:.2f}",
            f"{util * 100:.0f}%",
            n,
            f"{rtt_mean:.2f}",
            f"{p50:.2f}",
            f"{p99:.2f}",
            f"{p999:.2f}",
            f"{viol * 100:.2f}%",
            f"{burn:.2f}",
        )
        for (process, users), (
            n,
            offered,
            util,
            rtt_mean,
            p50,
            p99,
            p999,
            viol,
            burn,
        ) in zip(grid, points)
    ]
    ctx.out.write(
        format_table(
            [
                "process",
                "users",
                "offered (Mbps)",
                "util",
                "n",
                "mean (ms)",
                "p50 (ms)",
                "p99 (ms)",
                "p99.9 (ms)",
                "viol rate",
                "burn (10 ms)",
            ],
            rows,
            title=(
                "RTT vs population on the shared wire "
                f"({LOAD_CURVE_PER_USER_BPS:.0f} bps/user, exact probes)"
            ),
        )
        + "\n"
    )
    ctx.out.write(
        format_series(
            "users",
            "probe RTT p99 (ms), poisson",
            [str(users) for users in LOAD_CURVE_USERS],
            [by_cell[("poisson", users)][5] for users in LOAD_CURVE_USERS],
            title="The Figure 8 knee, three orders of magnitude later",
            y_format="{:.2f}",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/scale_load_curve.csv",
            [
                "process",
                "users",
                "samples",
                "offered_mbps",
                "utilization",
                "rtt_mean_ms",
                "rtt_p50_ms",
                "rtt_p99_ms",
                "rtt_p999_ms",
                "violation_rate",
                "budget_burn",
            ],
            [
                (process, users, n, offered, util, rtt_mean, p50, p99, p999, viol, burn)
                for (process, users), (
                    n,
                    offered,
                    util,
                    rtt_mean,
                    p50,
                    p99,
                    p999,
                    viol,
                    burn,
                ) in zip(grid, points)
            ],
        )


def _scale_closed_curve(ctx) -> None:
    """Sweep closed-loop sessions over the population axis; mark the knee."""
    from ..analytic.mva import saturation_population

    points = ctx.executor.map(
        "scale_closed_curve" + ctx.fault_suffix,
        partial(_scale_closed_curve_point, seed=ctx.seed),
        CLOSED_CURVE_USERS,
        seed=ctx.seed,
    )
    by_users = dict(zip(CLOSED_CURVE_USERS, points))
    rows = [
        (
            users,
            f"{util * 100:.0f}%",
            n,
            f"{p50:.2f}",
            f"{p99:.2f}",
            f"{xps:.0f}",
            f"{per_session:.4f}",
            f"{resp:.1f}",
            f"{mva_xps:.0f}",
            f"{viol * 100:.2f}%",
        )
        for users, (n, util, p50, p99, xps, per_session, resp, mva_xps, viol, _) in zip(
            CLOSED_CURVE_USERS, points
        )
    ]
    from ..net.loadgen import DEFAULT_KEYSTROKE_BYTES
    from ..units import mbps_to_bytes_per_ms
    from .population import DEFAULT_ECHO_BYTES

    demand_ms = (DEFAULT_KEYSTROKE_BYTES + DEFAULT_ECHO_BYTES) / (
        mbps_to_bytes_per_ms(CLOSED_CURVE_BANDWIDTH_MBPS)
    )
    think_per_round = (
        CLOSED_CURVE_THINK_MS / CLOSED_CURVE_BURST_KEYS + CLOSED_CURVE_TYPE_MS
    )
    knee = saturation_population(think_per_round, [demand_ms])
    ctx.out.write(
        format_table(
            [
                "sessions",
                "util",
                "n",
                "p50 (ms)",
                "p99 (ms)",
                "X (keys/s)",
                "keys/s/session",
                "R (ms)",
                "MVA X bound",
                "viol rate",
            ],
            rows,
            title=(
                "Closed-loop typing sessions on the shared wire "
                f"(MVA knee N* = {knee:,.0f}, exact probes)"
            ),
        )
        + "\n"
    )
    ctx.out.write(
        format_series(
            "sessions",
            "per-session throughput (keys/s)",
            [str(users) for users in CLOSED_CURVE_USERS],
            [by_users[users][5] for users in CLOSED_CURVE_USERS],
            title="The MVA knee: flat until N*, then 1/N decay",
            y_format="{:.4f}",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/scale_closed_curve.csv",
            [
                "sessions",
                "samples",
                "utilization",
                "rtt_p50_ms",
                "rtt_p99_ms",
                "throughput_keys_per_s",
                "per_session_keys_per_s",
                "response_ms",
                "mva_throughput_bound_keys_per_s",
                "violation_rate",
                "budget_burn",
            ],
            [
                (users, n, util, p50, p99, xps, per_session, resp, mva_xps, viol, burn)
                for users, (
                    n,
                    util,
                    p50,
                    p99,
                    xps,
                    per_session,
                    resp,
                    mva_xps,
                    viol,
                    burn,
                ) in zip(CLOSED_CURVE_USERS, points)
            ],
        )


def _scale_fleet(ctx) -> None:
    """Sweep background population per server; print the p99 frontier."""
    grid = [
        (process, bg_users)
        for process in FLEET_PROCESSES
        for bg_users in FLEET_BG_USERS
    ]
    points = ctx.executor.map(
        "scale_fleet" + ctx.fault_suffix,
        partial(_scale_fleet_point, seed=ctx.seed),
        grid,
        seed=ctx.seed,
    )
    by_cell = dict(zip(grid, points))
    rows = [
        (
            process,
            bg_users,
            n,
            f"{cpu * 100:.0f}%",
            f"{lan * 100:.0f}%",
            f"{p50:.1f}",
            f"{p99:.1f}",
            f"{viol * 100:.2f}%",
            f"{burn:.2f}",
        )
        for (process, bg_users), (n, cpu, lan, p50, p99, viol, burn) in zip(
            grid, points
        )
    ]
    ctx.out.write(
        format_table(
            [
                "process",
                "bg users/server",
                "n",
                "cpu",
                "lan",
                "p50 (ms)",
                "p99 (ms)",
                "viol rate",
                f"burn ({FLEET_BUDGET_MS:.0f} ms)",
            ],
            rows,
            title=(
                f"Capacity frontier at population scale: {FLEET_SERVERS} "
                f"servers, {FLEET_PROBES_PER_SERVER} pinned probes each, "
                "corrected latencies"
            ),
        )
        + "\n"
    )
    ctx.out.write(
        format_series(
            "bg users/server",
            "probe p99 (ms), onoff",
            [str(bg_users) for bg_users in FLEET_BG_USERS],
            [by_cell[("onoff", bg_users)][4] for bg_users in FLEET_BG_USERS],
            title="What a bursty million-user farm does to the tail",
            y_format="{:.1f}",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/scale_fleet.csv",
            [
                "process",
                "bg_users_per_server",
                "samples",
                "cpu_utilization",
                "lan_utilization",
                "p50_ms",
                "p99_ms",
                "violation_rate",
                "budget_burn",
            ],
            [
                (process, bg_users, n, cpu, lan, p50, p99, viol, burn)
                for (process, bg_users), (n, cpu, lan, p50, p99, viol, burn) in zip(
                    grid, points
                )
            ],
        )


def _scale_closed_fleet(ctx) -> None:
    """Sweep typing sessions per server; print the self-throttling frontier."""
    points = ctx.executor.map(
        "scale_closed_fleet" + ctx.fault_suffix,
        partial(_scale_closed_fleet_point, seed=ctx.seed),
        CLOSED_FLEET_BG_SESSIONS,
        seed=ctx.seed,
    )
    by_cell = dict(zip(CLOSED_FLEET_BG_SESSIONS, points))
    rows = [
        (
            bg_sessions,
            n,
            f"{cpu * 100:.0f}%",
            f"{lan * 100:.0f}%",
            f"{keys_s:.0f}",
            f"{p50:.1f}",
            f"{p99:.1f}",
            f"{viol * 100:.2f}%",
            f"{burn:.2f}",
        )
        for bg_sessions, (n, cpu, lan, keys_s, p50, p99, viol, burn) in zip(
            CLOSED_FLEET_BG_SESSIONS, points
        )
    ]
    ctx.out.write(
        format_table(
            [
                "sessions/server",
                "n",
                "cpu",
                "lan",
                "keys/s",
                "p50 (ms)",
                "p99 (ms)",
                "viol rate",
                f"burn ({FLEET_BUDGET_MS:.0f} ms)",
            ],
            rows,
            title=(
                f"Closed-loop capacity frontier: {FLEET_SERVERS} servers, "
                f"{FLEET_PROBES_PER_SERVER} pinned probes each, typing "
                "sessions that block on their echoes"
            ),
        )
        + "\n"
    )
    ctx.out.write(
        format_series(
            "sessions/server",
            "probe p99 (ms)",
            [str(bg_sessions) for bg_sessions in CLOSED_FLEET_BG_SESSIONS],
            [by_cell[bg_sessions][5] for bg_sessions in CLOSED_FLEET_BG_SESSIONS],
            title="Self-throttling sessions still have a frontier",
            y_format="{:.1f}",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/scale_closed_fleet.csv",
            [
                "bg_sessions_per_server",
                "samples",
                "cpu_utilization",
                "lan_utilization",
                "keys_per_s_per_server",
                "p50_ms",
                "p99_ms",
                "violation_rate",
                "budget_burn",
            ],
            [
                (bg_sessions, n, cpu, lan, keys_s, p50, p99, viol, burn)
                for bg_sessions, (
                    n,
                    cpu,
                    lan,
                    keys_s,
                    p50,
                    p99,
                    viol,
                    burn,
                ) in zip(CLOSED_FLEET_BG_SESSIONS, points)
            ],
        )


_REGISTERED = False


def _register() -> None:
    """Register this module's experiments; idempotent.

    Driven by ``repro.cli`` at this module's canonical position in the
    registration sequence (see ``repro.fleet.experiments._register`` for
    why import-time decorators would make registry order depend on which
    module a process imports first).
    """
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True
    experiment(
        "scale_load_curve",
        title="RTT vs load at 10^4-10^6 background users (hybrid tier)",
        group="scale",
    )(_scale_load_curve)
    experiment(
        "scale_closed_curve",
        title="Closed-loop X(N) and the MVA knee at 10^3-10^6 sessions",
        group="scale",
    )(_scale_closed_curve)
    experiment(
        "scale_fleet",
        title="Capacity frontier with vectorized background populations",
        group="scale",
    )(_scale_fleet)
    experiment(
        "scale_closed_fleet",
        title="Capacity frontier with closed-loop typing backgrounds",
        group="scale",
    )(_scale_closed_fleet)


# Importing any experiments module alone must still populate the whole
# registry in canonical order: pull in the CLI, which calls every
# module's ``_register`` in sequence.
from .. import cli as _cli  # noqa: E402,F401
