"""Registered scale experiments: load curves and fleets at real populations.

Two scenarios take the hybrid tier through the same executor pipeline as
every figure (``--jobs``, result cache, tracing all compose):

``scale_load_curve``
    Figures 8–9 reshaped for the north star: ping RTT versus *population*
    on the shared link, 10⁴ to 10⁶ background users offering thin-client
    trickle, both arrival processes.  The background is fluid
    (cost independent of the user count); the probes are exact packets,
    so the p99/p99.9 columns and the 10 ms budget burn are measured, not
    modeled.  This is the farm-sizing curve Gray's *Locally Served
    Network Computers* asks for (PAPERS.md).

``scale_fleet``
    The capacity frontier rerun at realistic population sizes: each
    server in a co-safe fleet carries a vectorized background population
    (LAN bytes + scheduler demand) while two pinned probe sessions per
    server type through the full kernel/VM/protocol stack.  Corrected
    p99 against the 100 ms interaction budget marks the frontier —
    background users per server a server can hide while staying
    perceptually instant.

Both sweeps are byte-identical across serial, ``--jobs N``, and
cold/warm-cache runs on either kernel and either recorder — the
``scale-determinism`` CI job diffs exactly that matrix.  Faults do not
compose into these scenarios (the background is offered load, not a
fault target); the sweep name still carries the fault suffix so cache
entries stay distinct.
"""

from __future__ import annotations

from functools import partial
from typing import List, Tuple

from ..core.registry import experiment
from ..core.report import format_series, format_table, write_csv

#: Arrival processes raced by ``scale_load_curve`` (output row order).
LOAD_CURVE_PROCESSES = ["poisson", "onoff"]

#: Background population sizes on the load curve's x-axis.
LOAD_CURVE_USERS = [10_000, 100_000, 300_000, 600_000, 900_000, 1_000_000]

#: Per-user offered load: a thin-client trickle.  9 bits/s per user puts
#: one million users at 90% of the 10 Mbps wire — the curve sweeps the
#: whole stable range and ends at the knee, like Figure 8 does.
LOAD_CURVE_PER_USER_BPS = 9.0

#: The shared medium (the paper's testbed wire).
LOAD_CURVE_BANDWIDTH_MBPS = 10.0

#: Fluid tick: a sixth of a 1500-byte frame's service time, where the
#: differential suite shows the smoothing bias is inside the noise.
LOAD_CURVE_TICK_MS = 0.2

#: Burst shape for the on-off rows (matches ``slo_burst``).
LOAD_CURVE_ON_FRACTION = 0.25
LOAD_CURVE_CYCLE_MS = 500.0

#: Probe cadence and measurement window.
LOAD_CURVE_PROBE_INTERVAL_MS = 5.0
LOAD_CURVE_DURATION_MS = 30_000.0
LOAD_CURVE_WARMUP_MS = 1_000.0

#: ``scale_fleet`` shape: a small co-safe fleet, every server carrying a
#: background population and two pinned probe sessions.
FLEET_SERVERS = 2
FLEET_PROBES_PER_SERVER = 2
FLEET_BACKBONE_MBPS = 100.0

#: Background users per server on the frontier's x-axis: ~23%, 58%, and
#: 91% of server CPU, then just past saturation — the frontier's cliff.
FLEET_BG_USERS = [20_000, 50_000, 80_000, 95_000]

#: Arrival processes raced across the frontier (row order).
FLEET_PROCESSES = ["poisson", "onoff"]

FLEET_PER_USER_BPS = 100.0
#: Thin-client display updates, not full frames.
FLEET_PACKET_BYTES = 200
#: Scheduler demand per background packet: protocol + display work the
#: server burns per update, aggregated per tick across the worker pool.
FLEET_CPU_MS_PER_PACKET = 0.18
FLEET_CPU_THREADS = 8
FLEET_TICK_MS = 10.0

#: The 100 ms perception threshold at p99 (same contract as
#: ``fleet_capacity`` and the chaos grid).
FLEET_BUDGET_MS = 100.0
FLEET_SLO_TARGET = 0.99

FLEET_WARMUP_MS = 1_500.0
FLEET_MEASURE_MS = 8_000.0


def _percentile(samples: List[float], pct: float) -> float:
    """Nearest-rank percentile of *samples* (0.0 when empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = int(round(pct / 100.0 * (len(ordered) - 1)))
    return ordered[min(rank, len(ordered) - 1)]


def _scale_load_curve_point(
    point: Tuple[str, int],
    *,
    seed: int,
) -> Tuple[int, float, float, float, float, float, float, float, float]:
    """One curve cell: (n, offered, util, mean, p50, p99, p99.9, viol, burn)."""
    from ..sim.rng import derive_seed
    from .hybrid import run_load_curve_point

    process, users = point
    obs = run_load_curve_point(
        users,
        process=process,
        per_user_bps=LOAD_CURVE_PER_USER_BPS,
        bandwidth_mbps=LOAD_CURVE_BANDWIDTH_MBPS,
        tick_ms=LOAD_CURVE_TICK_MS,
        on_fraction=LOAD_CURVE_ON_FRACTION,
        cycle_ms=LOAD_CURVE_CYCLE_MS,
        probe_interval_ms=LOAD_CURVE_PROBE_INTERVAL_MS,
        duration_ms=LOAD_CURVE_DURATION_MS,
        warmup_ms=LOAD_CURVE_WARMUP_MS,
        seed=derive_seed(seed, f"scale_load_curve:{process}:{users}"),
        mode="hybrid",
    )
    return (
        obs.samples,
        obs.offered_mbps,
        obs.utilization,
        obs.rtt_mean_ms,
        obs.rtt_p50_ms,
        obs.rtt_p99_ms,
        obs.rtt_p999_ms,
        obs.violation_rate,
        obs.budget_burn,
    )


def _drive_probe_fleet(fleet, measure_ms: float):
    """Pin probe sessions, warm up, attach a tracker, and measure.

    Mirrors the slo experiments' driver, with placement pinned: probe
    ``p<server>.<k>`` lands on server ``<server>``, so every server's
    background population is measured through a session *on that server*.
    """
    from ..slo.budget import LatencyBudget, SloTracker

    rates = [2.0, 4.0]
    for index in range(len(fleet.servers)):
        for k in range(FLEET_PROBES_PER_SERVER):
            fleet.open_session(
                f"p{index}.{k}",
                rate_hz=rates[k % len(rates)],
                display_chars=8,
                pin_server=index,
            )
    fleet.run(FLEET_WARMUP_MS)
    for session in fleet.sessions.values():
        session.latencies_ms.clear()
        session.intended_latencies_ms.clear()
    tracker = SloTracker(
        LatencyBudget("interaction", FLEET_BUDGET_MS, target=FLEET_SLO_TARGET)
    )
    fleet.slo_tracker = tracker
    fleet.run(measure_ms)
    return tracker


def _scale_fleet_point(
    cell: Tuple[str, int],
    *,
    seed: int,
) -> Tuple[int, float, float, float, float, float, float]:
    """One frontier cell: (n, cpu util, lan util, p50, p99, viol, burn)."""
    from ..core.server import ServerConfig
    from ..fleet.cluster import Fleet, FleetConfig
    from ..sim.rng import derive_seed
    from .population import PopulationSpec

    process, bg_users = cell
    config = FleetConfig(
        server=ServerConfig.tse(include_idle_activity=False),
        num_servers=FLEET_SERVERS,
        placement="round_robin",
        admission_mode="reject",
        capacity_per_server=FLEET_PROBES_PER_SERVER,
        backbone_mbps=FLEET_BACKBONE_MBPS,
        co_safe_sessions=True,
    )
    fleet = Fleet(
        config, seed=derive_seed(seed, f"scale_fleet:{process}:{bg_users}")
    )
    spec = PopulationSpec(
        users=bg_users,
        per_user_bps=FLEET_PER_USER_BPS,
        process=process,
        tick_ms=FLEET_TICK_MS,
        packet_bytes=FLEET_PACKET_BYTES,
        cpu_ms_per_packet=FLEET_CPU_MS_PER_PACKET,
        cpu_threads=FLEET_CPU_THREADS,
    )
    horizon = FLEET_WARMUP_MS + FLEET_MEASURE_MS
    for index in range(FLEET_SERVERS):
        fleet.attach_background(index, spec, horizon_ms=horizon)
    tracker = _drive_probe_fleet(fleet, FLEET_MEASURE_MS)
    corrected = fleet.corrected_latencies_ms()
    report = fleet.report(t0=FLEET_WARMUP_MS)
    lan_util = fleet.backgrounds[0].utilization(FLEET_WARMUP_MS, horizon)
    return (
        len(corrected),
        float(report["servers"][0]["cpu_utilization"]),
        lan_util,
        _percentile(corrected, 50.0),
        _percentile(corrected, 99.0),
        tracker.violation_rate,
        tracker.budget_burn,
    )


def _scale_load_curve(ctx) -> None:
    """Sweep both processes over the population axis; print the knee."""
    grid = [
        (process, users)
        for process in LOAD_CURVE_PROCESSES
        for users in LOAD_CURVE_USERS
    ]
    points = ctx.executor.map(
        "scale_load_curve" + ctx.fault_suffix,
        partial(_scale_load_curve_point, seed=ctx.seed),
        grid,
        seed=ctx.seed,
    )
    by_cell = dict(zip(grid, points))
    rows = [
        (
            process,
            users,
            f"{offered:.2f}",
            f"{util * 100:.0f}%",
            n,
            f"{rtt_mean:.2f}",
            f"{p50:.2f}",
            f"{p99:.2f}",
            f"{p999:.2f}",
            f"{viol * 100:.2f}%",
            f"{burn:.2f}",
        )
        for (process, users), (
            n,
            offered,
            util,
            rtt_mean,
            p50,
            p99,
            p999,
            viol,
            burn,
        ) in zip(grid, points)
    ]
    ctx.out.write(
        format_table(
            [
                "process",
                "users",
                "offered (Mbps)",
                "util",
                "n",
                "mean (ms)",
                "p50 (ms)",
                "p99 (ms)",
                "p99.9 (ms)",
                "viol rate",
                "burn (10 ms)",
            ],
            rows,
            title=(
                "RTT vs population on the shared wire "
                f"({LOAD_CURVE_PER_USER_BPS:.0f} bps/user, exact probes)"
            ),
        )
        + "\n"
    )
    ctx.out.write(
        format_series(
            "users",
            "probe RTT p99 (ms), poisson",
            [str(users) for users in LOAD_CURVE_USERS],
            [by_cell[("poisson", users)][5] for users in LOAD_CURVE_USERS],
            title="The Figure 8 knee, three orders of magnitude later",
            y_format="{:.2f}",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/scale_load_curve.csv",
            [
                "process",
                "users",
                "samples",
                "offered_mbps",
                "utilization",
                "rtt_mean_ms",
                "rtt_p50_ms",
                "rtt_p99_ms",
                "rtt_p999_ms",
                "violation_rate",
                "budget_burn",
            ],
            [
                (process, users, n, offered, util, rtt_mean, p50, p99, p999, viol, burn)
                for (process, users), (
                    n,
                    offered,
                    util,
                    rtt_mean,
                    p50,
                    p99,
                    p999,
                    viol,
                    burn,
                ) in zip(grid, points)
            ],
        )


def _scale_fleet(ctx) -> None:
    """Sweep background population per server; print the p99 frontier."""
    grid = [
        (process, bg_users)
        for process in FLEET_PROCESSES
        for bg_users in FLEET_BG_USERS
    ]
    points = ctx.executor.map(
        "scale_fleet" + ctx.fault_suffix,
        partial(_scale_fleet_point, seed=ctx.seed),
        grid,
        seed=ctx.seed,
    )
    by_cell = dict(zip(grid, points))
    rows = [
        (
            process,
            bg_users,
            n,
            f"{cpu * 100:.0f}%",
            f"{lan * 100:.0f}%",
            f"{p50:.1f}",
            f"{p99:.1f}",
            f"{viol * 100:.2f}%",
            f"{burn:.2f}",
        )
        for (process, bg_users), (n, cpu, lan, p50, p99, viol, burn) in zip(
            grid, points
        )
    ]
    ctx.out.write(
        format_table(
            [
                "process",
                "bg users/server",
                "n",
                "cpu",
                "lan",
                "p50 (ms)",
                "p99 (ms)",
                "viol rate",
                f"burn ({FLEET_BUDGET_MS:.0f} ms)",
            ],
            rows,
            title=(
                f"Capacity frontier at population scale: {FLEET_SERVERS} "
                f"servers, {FLEET_PROBES_PER_SERVER} pinned probes each, "
                "corrected latencies"
            ),
        )
        + "\n"
    )
    ctx.out.write(
        format_series(
            "bg users/server",
            "probe p99 (ms), onoff",
            [str(bg_users) for bg_users in FLEET_BG_USERS],
            [by_cell[("onoff", bg_users)][4] for bg_users in FLEET_BG_USERS],
            title="What a bursty million-user farm does to the tail",
            y_format="{:.1f}",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/scale_fleet.csv",
            [
                "process",
                "bg_users_per_server",
                "samples",
                "cpu_utilization",
                "lan_utilization",
                "p50_ms",
                "p99_ms",
                "violation_rate",
                "budget_burn",
            ],
            [
                (process, bg_users, n, cpu, lan, p50, p99, viol, burn)
                for (process, bg_users), (n, cpu, lan, p50, p99, viol, burn) in zip(
                    grid, points
                )
            ],
        )


_REGISTERED = False


def _register() -> None:
    """Register this module's experiments; idempotent.

    Driven by ``repro.cli`` at this module's canonical position in the
    registration sequence (see ``repro.fleet.experiments._register`` for
    why import-time decorators would make registry order depend on which
    module a process imports first).
    """
    global _REGISTERED
    if _REGISTERED:
        return
    _REGISTERED = True
    experiment(
        "scale_load_curve",
        title="RTT vs load at 10^4-10^6 background users (hybrid tier)",
        group="scale",
    )(_scale_load_curve)
    experiment(
        "scale_fleet",
        title="Capacity frontier with vectorized background populations",
        group="scale",
    )(_scale_fleet)


# Importing any experiments module alone must still populate the whole
# registry in canonical order: pull in the CLI, which calls every
# module's ``_register`` in sequence.
from .. import cli as _cli  # noqa: E402,F401
