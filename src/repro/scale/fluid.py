"""Fluid background workload on a link: the hybrid tier's fast half.

A million background users offer ~capacity bytes per second no matter how
large the population is, but the *event count* of simulating them per
packet scales with the population.  This module removes the events
entirely: the background's per-tick byte counts are presampled into one
array (see :mod:`repro.net.loadgen`), and the link's unfinished work
``W(t)`` is integrated lazily and analytically between probe packets.

Within a tick the sampled bytes are spread uniformly — fluid inflow at
rate ``rho = offered_bytes_per_ms / capacity_bytes_per_ms`` — so the
workload is piecewise linear: on a segment of length ``dt``,

* ``rho >= 1``: the queue grows, ``W += (rho - 1) * dt``;
* ``rho < 1``: the queue drains, ``W = max(0, W - (1 - rho) * dt)``
  (once empty it stays empty for the rest of the segment, because the
  inflow is constant and below capacity).

Discrete foreground packets (the probes) add their own service time as a
step in the same process, so FIFO waits stay exact with respect to the
*fluid* arrival pattern; smearing within-tick arrival times is the one
approximation, and it vanishes as ``tick_ms`` shrinks relative to the
service time (the differential-equivalence suite pins this at small N).

Integration is O(ticks crossed), amortized O(total ticks) per run —
independent of the population size.
"""

from __future__ import annotations

from ..errors import NetworkError


class FluidBackground:
    """Piecewise-linear unfinished-work integrator for a hybrid link.

    Parameters
    ----------
    link:
        The :class:`repro.net.link.Link` whose capacity drains the work.
        Pass ``attach=False`` to build an unattached integrator (unit
        tests); otherwise the constructor wires itself in via
        :meth:`~repro.net.link.Link.attach_background`.
    tick_ms:
        Width of each presampled tick.
    tick_bytes:
        Sequence (list or numpy array) of offered background bytes per
        tick, starting at simulation time ``start_ms``.  Beyond the last
        tick the background offers nothing (the queue drains).  Pass an
        empty sequence and feed ticks at runtime via :meth:`offer_tick`
        for workloads that cannot be presampled (closed-loop populations,
        whose offered bytes depend on the latency they experience).
    """

    def __init__(self, link, tick_ms: float, tick_bytes, *, start_ms: float = 0.0,
                 attach: bool = True) -> None:
        if tick_ms <= 0:
            raise NetworkError("tick_ms must be positive")
        if start_ms < 0:
            raise NetworkError("start_ms cannot be negative")
        self.link = link
        self.tick_ms = tick_ms
        self.start_ms = start_ms
        capacity = link.bytes_per_ms
        # Inflow ratio per tick: background work-ms arriving per elapsed ms.
        self._rho = [float(b) / tick_ms / capacity for b in tick_bytes]
        self._bytes = [float(b) for b in tick_bytes]
        self.offered_bytes_total = float(sum(self._bytes))
        self._w = 0.0  # unfinished work (ms of transmission) at time _t
        self._t = start_ms
        self.peak_backlog_ms = 0.0
        if attach:
            link.attach_background(self)

    @property
    def n_ticks(self) -> int:
        """Number of presampled background ticks."""
        return len(self._rho)

    @property
    def end_ms(self) -> float:
        """Time at which the background stops offering bytes."""
        return self.start_ms + self.tick_ms * len(self._rho)

    # -- the workload process ----------------------------------------------

    def _advance(self, now: float) -> None:
        """Integrate W forward from the last query time to *now*."""
        t = self._t
        if now <= t:
            return
        w = self._w
        tick = self.tick_ms
        rho = self._rho
        n = len(rho)
        # Index of the tick containing t (relative to start_ms); on an
        # exact boundary this is the tick that *starts* there.
        i = int((t - self.start_ms) / tick)
        peak = self.peak_backlog_ms
        while t < now:
            seg_end = self.start_ms + (i + 1) * tick
            if seg_end > now:
                seg_end = now
            dt = seg_end - t
            r = rho[i] if 0 <= i < n else 0.0
            if r >= 1.0:
                w += (r - 1.0) * dt
                if w > peak:
                    peak = w
            else:
                w -= (1.0 - r) * dt
                if w < 0.0:
                    w = 0.0
            t = seg_end
            i += 1
        self._w = w
        self._t = now
        self.peak_backlog_ms = peak

    def queueing_delay_ms(self, now: float) -> float:
        """Unfinished work W(now): the FIFO wait a packet arriving now sees."""
        self._advance(now)
        return self._w

    def backlog_ms(self, now: float) -> float:
        """Alias for :meth:`queueing_delay_ms` (reporting-friendly name)."""
        return self.queueing_delay_ms(now)

    def offer_tick(self, tick_bytes: float) -> None:
        """Append one tick's offered bytes at runtime (streaming mode).

        Open populations presample their whole horizon, but a closed-loop
        population's next tick depends on the completions this one sees,
        so its driver appends tick bytes as the simulation reaches each
        boundary.  The appended tick covers ``[end_ms, end_ms + tick_ms)``
        and must land before the integrator crosses its start — queries
        smear it uniformly exactly like a presampled tick.
        """
        if tick_bytes < 0:
            raise NetworkError("offered bytes cannot be negative")
        if self._t > self.end_ms:
            raise NetworkError(
                "cannot append a background tick the integrator has passed"
            )
        b = float(tick_bytes)
        self._rho.append(b / self.tick_ms / self.link.bytes_per_ms)
        self._bytes.append(b)
        self.offered_bytes_total += b

    def add_work_ms(self, ms: float) -> None:
        """Add a discrete packet's service time to the workload (a step)."""
        if ms < 0:
            raise NetworkError("work cannot be negative")
        self._w += ms
        if self._w > self.peak_backlog_ms:
            self.peak_backlog_ms = self._w

    # -- reporting helpers -------------------------------------------------

    def offered_bytes(self, t0: float, t1: float) -> float:
        """Background bytes offered over ``[t0, t1)`` (pro-rata at edges)."""
        if t1 <= t0:
            raise NetworkError("empty offered_bytes window")
        total = 0.0
        tick = self.tick_ms
        for i, b in enumerate(self._bytes):
            lo = self.start_ms + i * tick
            hi = lo + tick
            overlap = min(hi, t1) - max(lo, t0)
            if overlap > 0:
                total += b * (overlap / tick)
        return total

    def utilization(self, t0: float, t1: float) -> float:
        """Background offered load over ``[t0, t1)`` as a fraction of capacity."""
        return self.offered_bytes(t0, t1) / (self.link.bytes_per_ms * (t1 - t0))
