"""Hybrid load-curve points: fluid populations, exact probe packets.

:func:`run_load_curve_point` is the Figures 8–9 measurement loop rebuilt
for populations the per-event kernel cannot hold: a background population
(10⁴–10⁶ users) loads the shared link — as per-event generators in
``mode="exact"``, as a presampled fluid in ``mode="hybrid"`` — while a
Poisson stream of 64-byte ping probes measures round-trip time exactly
(request and echo are real packets through the real FIFO in both modes).
Open-loop probes are coordinated-omission-safe by construction: sends
never wait for answers, so a saturated wire cannot suppress its own bad
samples.

The two modes are *statistically* interchangeable, not samplewise: they
consume different random streams, so equivalence is asserted on
distribution statistics (mean/p50/p99 over thousands of probes), which is
exactly what ``tests/scale/test_hybrid_equivalence.py`` does at small N.

:func:`simulate_hybrid_link_probe` is the analytic bridge: the same fluid
machinery shaped like :func:`repro.analytic.workbench.simulate_link_probe`
(one-way delay, Poisson everything), so the M/G/1 mixture closed form
applies — the only independent oracle at populations where no exact run
can be afforded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..analytic.workbench import (
    LOAD_FRAME_BYTES,
    PROBE_BYTES,
    LinkProbeObservation,
)
from ..errors import NetworkError
from ..net.link import Link
from ..net.loadgen import (
    DEFAULT_KEYSTROKE_BYTES,
    BatchPoissonSampler,
    OnOffLoadGenerator,
    PoissonLoadGenerator,
)
from ..net.packet import Packet
from ..sim.engine import Simulator
from ..sim.rng import RngRegistry, derive_seed
from ..sim.stats import mean, percentile
from .population import DEFAULT_ECHO_BYTES, ClosedLoopSpec, PopulationSpec

#: Run modes: ``exact`` spawns one per-event generator per user (small N
#: only), ``hybrid`` carries the population as presampled fluid.
MODES = ("exact", "hybrid")

#: The ping budget probes are scored against: the 10 ms computing
#: threshold (PAPERS.md) — network round trips above it are perceptible.
PROBE_BUDGET_MS = 10.0

#: SLO target shared with the slo experiments.
PROBE_SLO_TARGET = 0.99


@dataclass(frozen=True)
class LoadCurveObservation:
    """What one load-curve point measured.

    RTT statistics are exact sample percentiles over the probes'
    round-trip times (request + echo through the shared wire, the paper's
    §6.2 ping); ``violation_rate``/``budget_burn`` score the same series
    against the 10 ms probe budget through the SLO layer.
    ``utilization`` is offered background + measured probe load over the
    sampled window, as a fraction of capacity (the curves' x-axis).
    """

    users: int
    process: str
    mode: str
    offered_mbps: float
    utilization: float
    samples: int
    rtt_mean_ms: float
    rtt_p50_ms: float
    rtt_p90_ms: float
    rtt_p99_ms: float
    rtt_p999_ms: float
    violation_rate: float
    budget_burn: float
    duration_ms: float


def run_load_curve_point(
    users: int,
    *,
    process: str = "poisson",
    per_user_bps: float = 100.0,
    bandwidth_mbps: float = 10.0,
    packet_bytes: int = LOAD_FRAME_BYTES,
    tick_ms: float = 0.2,
    on_fraction: float = 0.25,
    cycle_ms: float = 500.0,
    probe_interval_ms: float = 5.0,
    duration_ms: float = 30_000.0,
    warmup_ms: float = 1_000.0,
    budget_ms: float = PROBE_BUDGET_MS,
    seed: int = 0,
    mode: str = "hybrid",
) -> LoadCurveObservation:
    """One RTT-vs-load point: *users* background users, ping probes.

    ``mode="exact"`` instantiates one per-event load generator per user
    (the pre-scale path — affordable to N≈64, the differential baseline);
    ``mode="hybrid"`` presamples the population's per-tick bytes and
    carries them as fluid.  Everything is a pure function of the
    parameters and *seed*, so points cache and parallelize
    byte-identically.
    """
    if mode not in MODES:
        raise NetworkError(f"unknown load-curve mode {mode!r}")
    if probe_interval_ms <= 0:
        raise NetworkError("probe interval must be positive")
    if duration_ms <= warmup_ms:
        raise NetworkError("duration must exceed the warmup window")
    spec = PopulationSpec(
        users=users,
        per_user_bps=per_user_bps,
        process=process,
        tick_ms=tick_ms,
        packet_bytes=packet_bytes,
        on_fraction=on_fraction,
        cycle_ms=cycle_ms,
    )
    from ..slo.budget import LatencyBudget, SloTracker

    rngs = RngRegistry(seed)
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=bandwidth_mbps)
    generators = []
    background = None
    if mode == "hybrid":
        from .population import BackgroundPopulation

        background = BackgroundPopulation(
            sim,
            link,
            spec,
            duration_ms=duration_ms,
            seed=derive_seed(seed, "scale:background"),
        )
    else:
        per_user_mbps = per_user_bps / 1e6
        for index in range(users):
            stream = rngs.stream(f"scale:background:{index}")
            if process == "poisson":
                generators.append(
                    PoissonLoadGenerator(
                        sim, link, per_user_mbps, stream,
                        packet_bytes=packet_bytes,
                    )
                )
            else:
                generators.append(
                    OnOffLoadGenerator(
                        sim, link, per_user_mbps, stream,
                        packet_bytes=packet_bytes,
                        on_fraction=on_fraction,
                        cycle_ms=cycle_ms,
                    )
                )
    tracker = SloTracker(
        LatencyBudget("probe_rtt", budget_ms, target=PROBE_SLO_TARGET)
    )
    probes = rngs.stream("scale:probes")
    rtts: List[float] = []

    def probe() -> None:
        sent_at = sim.now
        if sent_at >= warmup_ms:

            def request_delivered(packet: Packet) -> None:
                link.send(
                    Packet(PROBE_BYTES, channel="probe_echo"), echo_delivered
                )

            def echo_delivered(packet: Packet) -> None:
                rtt = sim.now - sent_at
                rtts.append(rtt)
                tracker.observe(sent_at, rtt)

            link.send(Packet(PROBE_BYTES, channel="probe"), request_delivered)
        else:
            # Warmup probes still echo, so the wire carries the same
            # probe load before and after sampling begins.
            link.send(
                Packet(PROBE_BYTES, channel="probe"),
                lambda __: link.send(Packet(PROBE_BYTES, channel="probe_echo")),
            )
        sim.schedule(probes.expovariate(1.0 / probe_interval_ms), probe)

    sim.schedule(probes.expovariate(1.0 / probe_interval_ms), probe)
    sim.run_until(duration_ms)
    for generator in generators:
        generator.stop()
    if not rtts:
        raise NetworkError("load-curve point produced no probe samples")
    report = tracker.report()
    utilization = link.utilization(warmup_ms, duration_ms)
    if background is not None:
        utilization += background.utilization(warmup_ms, duration_ms)
    return LoadCurveObservation(
        users=users,
        process=process,
        mode=mode,
        offered_mbps=spec.offered_mbps,
        utilization=utilization,
        samples=len(rtts),
        rtt_mean_ms=mean(rtts),
        rtt_p50_ms=percentile(rtts, 50.0),
        rtt_p90_ms=percentile(rtts, 90.0),
        rtt_p99_ms=percentile(rtts, 99.0),
        rtt_p999_ms=percentile(rtts, 99.9),
        violation_rate=report.violation_rate,
        budget_burn=report.budget_burn,
        duration_ms=duration_ms - warmup_ms,
    )


@dataclass(frozen=True)
class ClosedCurveObservation:
    """What one closed-loop curve point measured.

    Probe RTT statistics are the same exact CO-safe ping series the open
    curve reports.  The closed-loop columns are the MVA quantities:
    ``throughput_per_ms`` is echo completions per ms over the measurement
    window (X(N)), ``per_session_keys_per_s`` its per-user share,
    ``mean_blocked`` the time-average sessions awaiting an echo (Little's
    L, so R = L/X).  ``mva_throughput_per_ms`` / ``mva_response_ms`` are
    the closed-network asymptotic bounds ``X ≤ min(N/(Z+D), 1/D)`` and
    ``R ≥ max(D, N·D − Z)`` — the overlay the tables print.
    """

    users: int
    mode: str
    utilization: float
    samples: int
    rtt_mean_ms: float
    rtt_p50_ms: float
    rtt_p90_ms: float
    rtt_p99_ms: float
    rtt_p999_ms: float
    violation_rate: float
    budget_burn: float
    keystrokes: int
    completions: int
    throughput_per_ms: float
    per_session_keys_per_s: float
    mean_blocked: float
    response_ms: float
    mva_throughput_per_ms: float
    mva_response_ms: float
    duration_ms: float


def run_closed_curve_point(
    users: int,
    *,
    think_ms: float = 10_000.0,
    type_ms: float = 300.0,
    burst_keys: float = 20.0,
    bandwidth_mbps: float = 10.0,
    keystroke_bytes: int = DEFAULT_KEYSTROKE_BYTES,
    echo_bytes: int = DEFAULT_ECHO_BYTES,
    tick_ms: float = 1.0,
    probe_interval_ms: float = 5.0,
    duration_ms: float = 30_000.0,
    warmup_ms: float = 1_000.0,
    budget_ms: float = PROBE_BUDGET_MS,
    seed: int = 0,
    mode: str = "hybrid",
) -> ClosedCurveObservation:
    """One closed-loop point: *users* typing sessions, ping probes.

    The closed-loop twin of :func:`run_load_curve_point`: background
    sessions think, type keystroke bursts, and block on their echoes over
    the shared link, so offered load self-throttles as latency grows —
    X(N) bends at the MVA knee instead of driving the wire off a cliff.
    ``mode="exact"`` runs one per-event session loop per user (keystroke
    packet out, echo packet back — the differential baseline);
    ``mode="hybrid"`` carries the population as count vectors + fluid.
    Probes are exact packets in both modes.  Everything is a pure
    function of the parameters and *seed*.
    """
    if mode not in MODES:
        raise NetworkError(f"unknown closed-curve mode {mode!r}")
    if probe_interval_ms <= 0:
        raise NetworkError("probe interval must be positive")
    if duration_ms <= warmup_ms:
        raise NetworkError("duration must exceed the warmup window")
    spec = ClosedLoopSpec(
        users=users,
        think_ms=think_ms,
        type_ms=type_ms,
        burst_keys=burst_keys,
        tick_ms=tick_ms,
        keystroke_bytes=keystroke_bytes,
        echo_bytes=echo_bytes,
    )
    from ..slo.budget import LatencyBudget, SloTracker

    rngs = RngRegistry(seed)
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=bandwidth_mbps)
    # Post-warmup closed-loop counters, shared by both modes.
    window = {"keys": 0, "done": 0, "blocked_ms": 0.0}
    background = None
    baseline = {}
    if mode == "hybrid":
        from .population import ClosedLoopPopulation

        background = ClosedLoopPopulation(
            sim,
            link,
            spec,
            duration_ms=duration_ms,
            seed=derive_seed(seed, "scale:background"),
        )

        def snapshot() -> None:
            sampler = background.sampler
            baseline["keys"] = sampler.keystrokes_total
            baseline["done"] = sampler.completions_total
            baseline["blocked_ticks"] = sampler.blocked_ticks
            baseline["ticks"] = sampler.ticks_sampled

        sim.schedule(warmup_ms, snapshot)
    else:
        continue_prob = 1.0 - 1.0 / burst_keys

        def launch_session(index: int) -> None:
            stream = rngs.stream(f"scale:closed:{index}")

            def think() -> None:
                sim.schedule(stream.expovariate(1.0 / think_ms), type_next)

            def type_next() -> None:
                sim.schedule(stream.expovariate(1.0 / type_ms), keystroke)

            def keystroke() -> None:
                sent_at = sim.now
                if sent_at >= warmup_ms:
                    window["keys"] += 1

                def at_server(packet: Packet) -> None:
                    link.send(
                        Packet(echo_bytes, channel="closed_echo"), echoed
                    )

                def echoed(packet: Packet) -> None:
                    if sent_at >= warmup_ms:
                        window["done"] += 1
                        window["blocked_ms"] += sim.now - sent_at
                    if stream.random() < continue_prob:
                        type_next()
                    else:
                        think()

                link.send(Packet(keystroke_bytes, channel="closed"), at_server)

            think()

        for index in range(users):
            launch_session(index)
    tracker = SloTracker(
        LatencyBudget("probe_rtt", budget_ms, target=PROBE_SLO_TARGET)
    )
    probes = rngs.stream("scale:probes")
    rtts: List[float] = []

    def probe() -> None:
        sent_at = sim.now
        if sent_at >= warmup_ms:

            def request_delivered(packet: Packet) -> None:
                link.send(
                    Packet(PROBE_BYTES, channel="probe_echo"), echo_delivered
                )

            def echo_delivered(packet: Packet) -> None:
                rtt = sim.now - sent_at
                rtts.append(rtt)
                tracker.observe(sent_at, rtt)

            link.send(Packet(PROBE_BYTES, channel="probe"), request_delivered)
        else:
            link.send(
                Packet(PROBE_BYTES, channel="probe"),
                lambda __: link.send(Packet(PROBE_BYTES, channel="probe_echo")),
            )
        sim.schedule(probes.expovariate(1.0 / probe_interval_ms), probe)

    sim.schedule(probes.expovariate(1.0 / probe_interval_ms), probe)
    sim.run_until(duration_ms)
    if not rtts:
        raise NetworkError("closed-curve point produced no probe samples")
    measure_ms = duration_ms - warmup_ms
    if mode == "hybrid":
        sampler = background.sampler
        keys = sampler.keystrokes_total - baseline["keys"]
        done = sampler.completions_total - baseline["done"]
        ticks = sampler.ticks_sampled - baseline["ticks"]
        blocked = (
            (sampler.blocked_ticks - baseline["blocked_ticks"]) / ticks
            if ticks
            else 0.0
        )
        utilization = link.utilization(warmup_ms, duration_ms)
        utilization += background.utilization(warmup_ms, duration_ms)
    else:
        keys = window["keys"]
        done = window["done"]
        # Little's L over the window: total blocked-time per elapsed ms.
        blocked = window["blocked_ms"] / measure_ms
        utilization = link.utilization(warmup_ms, duration_ms)
    throughput = done / measure_ms
    response = blocked / throughput if throughput > 0 else 0.0
    # Closed-network asymptotes, per keystroke round: the wire is the one
    # queueing station (demand D), think + inter-keystroke time is the
    # delay station (Z; one think per burst_keys rounds), propagation
    # rides along as pure delay.
    demand_ms = spec.round_bytes / link.bytes_per_ms
    think_per_round = think_ms / burst_keys + type_ms + 2.0 * link.propagation_ms
    mva_throughput = min(
        users / (think_per_round + demand_ms), 1.0 / demand_ms
    )
    mva_response = max(demand_ms, users * demand_ms - think_per_round)
    report = tracker.report()
    return ClosedCurveObservation(
        users=users,
        mode=mode,
        utilization=utilization,
        samples=len(rtts),
        rtt_mean_ms=mean(rtts),
        rtt_p50_ms=percentile(rtts, 50.0),
        rtt_p90_ms=percentile(rtts, 90.0),
        rtt_p99_ms=percentile(rtts, 99.0),
        rtt_p999_ms=percentile(rtts, 99.9),
        violation_rate=report.violation_rate,
        budget_burn=report.budget_burn,
        keystrokes=keys,
        completions=done,
        throughput_per_ms=throughput,
        per_session_keys_per_s=throughput * 1000.0 / users,
        mean_blocked=blocked,
        response_ms=response,
        mva_throughput_per_ms=mva_throughput,
        mva_response_ms=mva_response,
        duration_ms=measure_ms,
    )


def simulate_hybrid_link_probe(
    rho: float,
    *,
    users: int = 100_000,
    bandwidth_mbps: float = 10.0,
    tick_ms: float = 0.1,
    probe_interval_ms: float = 5.0,
    duration_ms: float = 30_000.0,
    warmup_ms: float = 1_000.0,
    seed: int = 0,
) -> LinkProbeObservation:
    """One-way probe delay through a *fluid*-loaded link at load *rho*.

    The hybrid twin of
    :func:`repro.analytic.workbench.simulate_link_probe`: the offered
    1500-byte frames come from a :class:`BatchPoissonSampler` aggregating
    *users* sources (superposition-exact, so the M/G/1 mixture closed
    form still applies), the 64-byte probes are exact packets.
    ``mean_seen_in_system`` reports the workload each probe found,
    expressed in load-frame service times — the fluid analogue of the
    packets-in-system count.
    """
    if not 0.0 < rho < 1.0:
        raise NetworkError("offered utilization must be in (0, 1)")
    if users < 1:
        raise NetworkError("a population needs at least one user")
    if duration_ms <= warmup_ms:
        raise NetworkError("duration must exceed the warmup window")
    rngs = RngRegistry(seed)
    sim = Simulator()
    link = Link(sim, bandwidth_mbps=bandwidth_mbps)
    capacity = link.bytes_per_ms
    aggregate_rate = rho * capacity / LOAD_FRAME_BYTES  # frames per ms
    sampler = BatchPoissonSampler(
        aggregate_rate / users,
        tick_ms,
        sources=users,
        seed=derive_seed(seed, "scale:oracle:background"),
        packet_bytes=LOAD_FRAME_BYTES,
    )
    n_ticks = int(duration_ms // tick_ms) + 1
    from .fluid import FluidBackground

    fluid = FluidBackground(link, tick_ms, sampler.tick_bytes(n_ticks))
    frame_service_ms = LOAD_FRAME_BYTES / capacity
    probes = rngs.stream("scale:oracle:probes")
    delays: List[float] = []
    seen: List[float] = []

    def probe() -> None:
        sent_at = sim.now
        if sent_at >= warmup_ms:
            seen.append(fluid.queueing_delay_ms(sent_at) / frame_service_ms)

            def delivered(packet: Packet) -> None:
                delays.append(sim.now - sent_at)

            link.send(Packet(PROBE_BYTES, channel="probe"), delivered)
        else:
            link.send(Packet(PROBE_BYTES, channel="probe"))
        sim.schedule(probes.expovariate(1.0 / probe_interval_ms), probe)

    sim.schedule(probes.expovariate(1.0 / probe_interval_ms), probe)
    sim.run_until(duration_ms)
    if not delays:
        raise NetworkError("hybrid link point produced no probe samples")
    return LinkProbeObservation(
        samples=len(delays),
        mean_delay_ms=mean(delays),
        mean_seen_in_system=mean(seen),
        utilization=fluid.utilization(warmup_ms, duration_ms)
        + link.utilization(warmup_ms, duration_ms),
        offered_mbps=rho * bandwidth_mbps,
        duration_ms=duration_ms - warmup_ms,
        delay_p90_ms=percentile(delays, 90.0),
        delay_p99_ms=percentile(delays, 99.0),
    )
