"""Units and conversions used throughout the simulator.

The simulation clock counts **milliseconds** (as floats).  The paper reasons
about latency in milliseconds, about memory in kilobytes and megabytes, and
about network load in megabits per second; this module centralizes those
conversions so that magic numbers never appear inline.

Conventions
-----------
* time:      milliseconds (float).  ``SEC`` converts seconds to ms.
* sizes:     bytes (int).  ``KB``/``MB`` are binary (1024-based), matching the
             way the paper reports process and cache sizes.
* bandwidth: helper functions convert between Mbps (decimal, as network
             vendors and the paper use) and bytes-per-millisecond, the unit
             the link simulator computes with.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

US = 1e-3  #: one microsecond, in milliseconds
MS = 1.0  #: one millisecond
SEC = 1000.0  #: one second, in milliseconds
MINUTE = 60 * SEC  #: one minute, in milliseconds

# --- sizes -----------------------------------------------------------------

BYTE = 1
KB = 1024  #: one kibibyte, in bytes
MB = 1024 * 1024  #: one mebibyte, in bytes


def kb(n: float) -> int:
    """Return *n* kibibytes as a byte count (rounded to an int)."""
    return int(round(n * KB))


def mb(n: float) -> int:
    """Return *n* mebibytes as a byte count (rounded to an int)."""
    return int(round(n * MB))


# --- bandwidth ---------------------------------------------------------------

BITS_PER_BYTE = 8


def mbps_to_bytes_per_ms(mbps: float) -> float:
    """Convert a decimal megabits-per-second rate to bytes per millisecond.

    ``10 Mbps`` (classic shared Ethernet) is ``1250`` bytes/ms.
    """
    return mbps * 1e6 / BITS_PER_BYTE / 1000.0


def bytes_per_ms_to_mbps(bpm: float) -> float:
    """Convert bytes per millisecond back to decimal megabits per second."""
    return bpm * 1000.0 * BITS_PER_BYTE / 1e6


def bytes_over_ms_to_mbps(nbytes: float, duration_ms: float) -> float:
    """Average rate, in Mbps, of *nbytes* transferred over *duration_ms*."""
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    return bytes_per_ms_to_mbps(nbytes / duration_ms)


def transmit_time_ms(nbytes: float, mbps: float) -> float:
    """Time to clock *nbytes* onto a link of *mbps* capacity, in ms."""
    if mbps <= 0:
        raise ValueError("bandwidth must be positive")
    return nbytes / mbps_to_bytes_per_ms(mbps)
