"""Command-line experiment runner.

Regenerate any of the paper's tables and figures without writing code::

    python -m repro list
    python -m repro run fig3 --seed 1
    python -m repro run tab-proto
    python -m repro run all --csv results/

Each experiment prints the same rows/series its benchmark emits; ``--csv``
additionally writes machine-readable series next to the text output.

Experiments self-register through :mod:`repro.core.registry` — each paper
runner below carries an ``@experiment(...)`` decorator, and this module
then drives the fleet/analytic/SLO/scale modules' ``_register()`` hooks in a
fixed sequence (an explicit call rather than an import side effect, so
the registry order is identical no matter which experiments module a
process imports first).  ``list`` renders one table per registry group;
``run all`` executes the registry in registration order, which keeps the
paper experiments in their historical sequence (goldens and cache keys
are unchanged) with later groups appended.

Sweeps route through :class:`repro.exec.SweepExecutor`, so runs can be
parallel and cached:

``--jobs N``
    Fan sweep points out to ``N`` worker processes.  Results merge by
    parameter index, so the output is byte-identical to a serial run.
``--cache-dir DIR``
    Cache finished points in ``DIR``; re-running a sweep replays cached
    points from disk and recomputes only what changed (keys include the
    experiment name, parameter value, seed, and package version).
``--no-cache``
    Ignore ``--cache-dir`` and recompute everything.

Per-point progress and timing go to stderr, keeping stdout/CSV output
byte-stable across repeats.

Tracing (:mod:`repro.obs`) rides the same pipeline::

    python -m repro trace fig1 --seed 1 --trace-dir out/

runs the experiment with instrumentation on, writes ``out/fig1.trace.jsonl``
(structured simulation events) and ``out/fig1.metrics.json`` (counters,
gauges, histograms), and appends a metrics-summary table to the normal
output.  ``run --trace-dir PATH`` does the same for any run.  Artifacts are
deterministic and byte-identical across ``--jobs N`` and cached reruns, so
two trace directories can be diffed directly.
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import List, Optional, TextIO, Tuple

from .core.registry import REGISTRY, ExperimentSpec, experiment, groups
from .core.report import (
    format_metrics_summary,
    format_series,
    format_table,
    write_csv,
)
from .errors import ReproError
from .exec import RunContext
from .obs import summary_rows, write_run_artifacts

#: Back-compat aliases: the registry *is* the old hand-built dispatch
#: table (live mapping, registration order), and a registered spec plays
#: the old ``Experiment`` role.
EXPERIMENTS = REGISTRY
Experiment = ExperimentSpec


# --- per-point functions -----------------------------------------------------
#
# Each sweep's unit of work lives at module level (picklable, so the process
# backend can ship it to workers) and returns plain tuples/lists (picklable
# and compact, so the result cache can store them).  Experiments that ignore
# the seed key their cache entries under seed 0, letting every seed share
# the same cached points.


def _fig1_point(os_name: str, *, seed: int) -> Tuple[float, list, list]:
    from .cpu import run_idle_experiment

    result = run_idle_experiment(os_name, 60_000.0, seed=seed)
    times, utils = result.utilization_trace(bin_ms=1_000.0)
    return result.idle_utilization, list(times), list(utils)


def _fig2_point(os_name: str, *, seed: int) -> Tuple[float, list, list]:
    from .cpu import run_idle_experiment

    result = run_idle_experiment(os_name, 600_000.0, seed=seed)
    thresholds, curve = result.cumulative_latency_curve()
    return result.total_lost_time_ms, list(thresholds), list(curve)


def _fig3_point(point: Tuple[str, int], *, seed: int) -> float:
    from .workloads import run_stall_experiment

    os_name, queue_length = point
    (result,) = run_stall_experiment(os_name, [queue_length], seed=seed)
    return result.average_stall_ms


def _fig4_point(variant: str) -> Tuple[float, list, list]:
    from .workloads import run_webpage_experiment

    result = run_webpage_experiment(variant, duration_ms=160_000.0)
    times, mbps = result.load_series(2_000.0)
    return result.average_mbps(), list(times), list(mbps)


def _fig5_point(protocol: str) -> Tuple[float, list, list]:
    from .workloads import gif_10_frame, run_animations_over_protocol

    result = run_animations_over_protocol(protocol, [gif_10_frame()], 5_000.0)
    times, mbps = result.load_series(100.0)
    return result.average_mbps(500.0), list(times), list(mbps)


def _fig6_point(frame_count: int) -> Tuple[list, list, list]:
    from .workloads import run_cache_overflow_experiment

    result = run_cache_overflow_experiment(frame_count, 60_000.0)
    return (
        list(result.times_ms),
        list(result.cpu_utilization),
        list(result.cumulative_hit_ratio),
    )


def _fig7_point(frame_count: int) -> float:
    from .workloads import run_frame_count_sweep

    ((__, mbps),) = run_frame_count_sweep([frame_count], duration_ms=60_000.0)
    return mbps


def _ping_point(
    offered_mbps: float, *, seed: int, faults: str = "", fault_seed: int = 0
) -> Tuple[float, float]:
    from .net import FaultPlan, run_ping_experiment

    plan = FaultPlan.parse(faults, seed=fault_seed) if faults else None
    (result,) = run_ping_experiment(
        [offered_mbps], duration_ms=60_000.0, seed=seed, faults=plan
    )
    return result.mean_rtt_ms, result.rtt_variance


def _chaos_point(
    loss: float, *, faults: str = "", fault_seed: int = 0
) -> Tuple[float, float, float, int, int]:
    from .net import FaultPlan, run_chaos_experiment

    base = FaultPlan.parse(faults, seed=fault_seed)
    (result,) = run_chaos_experiment(
        [loss], base=base, seed=fault_seed, duration_ms=30_000.0
    )
    return (
        result.mean_latency_ms if result.latencies_ms else 0.0,
        result.latency_percentile_ms(99.0) if result.latencies_ms else 0.0,
        result.delivered_fraction,
        result.retransmits,
        result.timeouts_fired,
    )


def _tab_mem_point(point: Tuple[str, float], *, seed: int) -> Tuple[float, float, float]:
    from .memory import run_memory_latency_experiment

    os_name, demand = point
    s = run_memory_latency_experiment(os_name, demand, runs=10, seed=seed).summary
    return s.minimum, s.average, s.maximum


def _tab_proto_point(protocol: str, *, seed: int) -> Tuple[int, int, float, float]:
    from .workloads import application_workload, replay_workload

    tap = replay_workload(protocol, application_workload(seed))
    trace = tap.trace()
    vip = tap.vip_table_row()
    return (
        trace.total_bytes,
        trace.total_messages,
        trace.avg_message_size,
        vip["savings"],
    )


# --- experiment runners ------------------------------------------------------
#
# Definition order below is registration order, which is ``run all`` order:
# the paper's figures, then chaos, then the tables — the exact sequence the
# pre-registry CLI hard-coded.  Keep it that way; goldens and cache keys
# depend on it.


@experiment("fig1", title="Idle-state CPU activity traces")
def _fig1(ctx: RunContext) -> None:
    from .core.report import sparkline
    from .cpu import OS_NAMES

    points = ctx.executor.map(
        "fig1", partial(_fig1_point, seed=ctx.seed), list(OS_NAMES), seed=ctx.seed
    )
    rows = []
    for os_name, (idle_utilization, times, utils) in zip(OS_NAMES, points):
        rows.append(
            (os_name, f"{idle_utilization * 100:.2f}%", sparkline(utils[:30]))
        )
        if ctx.csv_dir:
            write_csv(
                f"{ctx.csv_dir}/fig1_{os_name}.csv",
                ["time_ms", "utilization"],
                zip(times, utils),
            )
    ctx.out.write(
        format_table(
            ["system", "avg idle util", "trace"],
            rows,
            title="Figure 1: idle-state processor activity",
        )
        + "\n"
    )


@experiment("fig2", title="Cumulative idle-state latency")
def _fig2(ctx: RunContext) -> None:
    from .cpu import OS_NAMES

    points = ctx.executor.map(
        "fig2", partial(_fig2_point, seed=ctx.seed), list(OS_NAMES), seed=ctx.seed
    )
    rows = []
    for os_name, (total_lost_ms, thresholds, curve) in zip(OS_NAMES, points):
        rows.append((os_name, f"{total_lost_ms / 1000:.1f}s"))
        if ctx.csv_dir:
            write_csv(
                f"{ctx.csv_dir}/fig2_{os_name}.csv",
                ["threshold_ms", "cumulative_latency_s"],
                zip(thresholds, curve),
            )
    ctx.out.write(
        format_table(
            ["system", "total lost time / 10 min"],
            rows,
            title="Figure 2: cumulative idle-state latency",
        )
        + "\n"
    )


@experiment("fig3", title="Stall length vs scheduler queue length")
def _fig3(ctx: RunContext) -> None:
    sweeps = {
        "nt_tse": [0, 5, 10, 15],
        "linux": [0, 5, 10, 15, 25, 35, 50],
    }
    values = [(os_name, n) for os_name, loads in sweeps.items() for n in loads]
    stalls = ctx.executor.map(
        "fig3", partial(_fig3_point, seed=ctx.seed), values, seed=ctx.seed
    )
    by_point = dict(zip(values, stalls))
    rows = []
    for os_name, loads in sweeps.items():
        for n in loads:
            rows.append((os_name, n, f"{by_point[(os_name, n)]:.0f}"))
        if ctx.csv_dir:
            write_csv(
                f"{ctx.csv_dir}/fig3_{os_name}.csv",
                ["queue_length", "avg_stall_ms"],
                [(n, by_point[(os_name, n)]) for n in loads],
            )
    ctx.out.write(
        format_table(
            ["system", "queue length", "avg stall (ms)"],
            rows,
            title="Figure 3: stall length vs scheduler queue length",
        )
        + "\n"
    )


@experiment("fig4", title="Synthetic web page network load")
def _fig4(ctx: RunContext) -> None:
    variants = ["marquee", "banner", "both"]
    points = ctx.executor.map("fig4", _fig4_point, variants, seed=0)
    rows = []
    for variant, (avg_mbps, times, mbps) in zip(variants, points):
        rows.append((variant, f"{avg_mbps:.3f}"))
        if ctx.csv_dir:
            write_csv(
                f"{ctx.csv_dir}/fig4_{variant}.csv",
                ["time_ms", "mbps"],
                zip(times, mbps),
            )
    ctx.out.write(
        format_table(
            ["variant", "avg Mbps"],
            rows,
            title="Figure 4: synthetic web page over RDP",
        )
        + "\n"
    )


@experiment("fig5", title="10-frame GIF over X/LBX/RDP")
def _fig5(ctx: RunContext) -> None:
    protocols = ["x", "lbx", "rdp"]
    points = ctx.executor.map("fig5", _fig5_point, protocols, seed=0)
    rows = []
    for name, (steady_mbps, times, mbps) in zip(protocols, points):
        rows.append((name, f"{steady_mbps:.3f}"))
        if ctx.csv_dir:
            write_csv(
                f"{ctx.csv_dir}/fig5_{name}.csv", ["time_ms", "mbps"], zip(times, mbps)
            )
    ctx.out.write(
        format_table(
            ["protocol", "steady Mbps"],
            rows,
            title="Figure 5: 10-frame 20 Hz GIF",
        )
        + "\n"
    )


@experiment("fig6", title="Cache overflow: hit ratio + CPU")
def _fig6(ctx: RunContext) -> None:
    (point,) = ctx.executor.map("fig6", _fig6_point, [66], seed=0)
    times_ms, cpu_utilization, cumulative_hit_ratio = point
    ctx.out.write(
        format_series(
            "time (s)",
            "cumulative hit ratio",
            [int(t / 1000) for t in times_ms[::10]],
            cumulative_hit_ratio[::10],
            title="Figure 6: 66-frame animation overflowing the cache",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/fig6.csv",
            ["time_ms", "cpu_utilization", "cumulative_hit_ratio"],
            zip(times_ms, cpu_utilization, cumulative_hit_ratio),
        )


@experiment("fig7", title="Network load vs frame count (cache cliff)")
def _fig7(ctx: RunContext) -> None:
    frame_counts = [25, 35, 45, 55, 65, 66, 70, 80, 90, 100]
    loads = ctx.executor.map("fig7", _fig7_point, frame_counts, seed=0)
    ctx.out.write(
        format_series(
            "frames",
            "Mbps",
            frame_counts,
            loads,
            title="Figure 7: network load vs frame count",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/fig7.csv",
            ["frames", "mbps"],
            zip(frame_counts, loads),
        )


def _ping_sweep(ctx: RunContext, levels: List[float]) -> List[Tuple[float, float]]:
    """The shared fig8/fig9 ping sweep, honoring the context's fault plan."""
    return ctx.executor.map(
        "ping" + ctx.fault_suffix,
        partial(
            _ping_point,
            seed=ctx.seed,
            faults=ctx.faults or "",
            fault_seed=ctx.fault_seed,
        ),
        levels,
        seed=ctx.seed,
    )


@experiment("fig8", title="RTT vs offered load")
def _fig8(ctx: RunContext) -> None:
    levels = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 9.6]
    # figs 8 and 9 share the "ping" sweep, so a cached fig8 run also
    # pre-pays every fig9 point (fig9's levels are a subset).
    points = _ping_sweep(ctx, levels)
    ctx.out.write(
        format_series(
            "offered Mbps",
            "mean RTT (ms)",
            levels,
            [mean_rtt for mean_rtt, __ in points],
            title="Figure 8: RTT vs offered load",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/fig8.csv",
            ["offered_mbps", "mean_rtt_ms", "rtt_variance"],
            [
                (level, mean_rtt, variance)
                for level, (mean_rtt, variance) in zip(levels, points)
            ],
        )


@experiment("fig9", title="RTT variance vs offered load")
def _fig9(ctx: RunContext) -> None:
    levels = [0, 2, 4, 6, 8, 9, 9.6]
    points = _ping_sweep(ctx, levels)
    ctx.out.write(
        format_series(
            "offered Mbps",
            "RTT variance (ms^2)",
            levels,
            [variance for __, variance in points],
            title="Figure 9: RTT jitter vs offered load",
            y_format="{:.2f}",
        )
        + "\n"
    )


@experiment(
    "chaos",
    title="Message latency vs loss rate (faulted wire)",
    group="chaos",
)
def _chaos(ctx: RunContext) -> None:
    """Latency vs loss rate on a faulted wire — the robustness axis the
    paper's perfect testbed never exercised."""
    levels = [0.0, 0.01, 0.02, 0.05, 0.1, 0.2]
    spec = ctx.faults or ""
    points = ctx.executor.map(
        f"chaos[{spec}@{ctx.fault_seed}]",
        partial(_chaos_point, faults=spec, fault_seed=ctx.fault_seed),
        levels,
        seed=ctx.seed,
    )
    rows = [
        (
            f"{loss * 100:g}%",
            f"{mean_ms:.2f}",
            f"{p99_ms:.2f}",
            f"{delivered * 100:.1f}%",
            retransmits,
            timeouts,
        )
        for loss, (mean_ms, p99_ms, delivered, retransmits, timeouts) in zip(
            levels, points
        )
    ]
    ctx.out.write(
        format_table(
            ["loss", "mean (ms)", "p99 (ms)", "delivered", "rexmits", "timeouts"],
            rows,
            title="Chaos: message latency vs loss rate (reliable transport)",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/chaos.csv",
            [
                "loss",
                "mean_latency_ms",
                "p99_latency_ms",
                "delivered_fraction",
                "retransmits",
                "timeouts_fired",
            ],
            [
                (loss,) + tuple(point)
                for loss, point in zip(levels, points)
            ],
        )


@experiment("tab-mem", title="Keystroke latency under page demand")
def _tab_mem(ctx: RunContext) -> None:
    cells = [
        (os_name, demand)
        for os_name in ("linux", "nt_tse")
        for demand in (0.5, 1.2)
    ]
    labels = {0.5: "<100%", 1.2: ">=100%"}
    points = ctx.executor.map(
        "tab-mem", partial(_tab_mem_point, seed=ctx.seed), cells, seed=ctx.seed
    )
    rows = [
        (os_name, labels[demand], f"{lo:.0f}", f"{avg:.0f}", f"{hi:.0f}")
        for (os_name, demand), (lo, avg, hi) in zip(cells, points)
    ]
    ctx.out.write(
        format_table(
            ["OS", "demand", "min", "avg", "max"],
            rows,
            title="§5.2: keystroke latency (ms) under page demand",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/tab_mem_latency.csv",
            ["os", "demand", "min_ms", "avg_ms", "max_ms"],
            rows,
        )


@experiment("tab-sessions", title="Per-login session memory")
def _tab_sessions(ctx: RunContext) -> None:
    from .memory import LINUX_SESSION, TSE_SESSION_LIGHT, TSE_SESSION_TYPICAL

    for session in (LINUX_SESSION, TSE_SESSION_TYPICAL, TSE_SESSION_LIGHT):
        rows = [(p.name, f"{p.private_kb:,} KB") for p in session.processes]
        rows.append(("Total", f"{session.total_kb:,} KB"))
        ctx.out.write(
            format_table(
                ["process", "private"],
                rows,
                title=f"§5.1.1 login: {session.os_name} ({session.variant})",
            )
            + "\n"
        )


@experiment("tab-proto", title="Protocol comparison + VIP savings")
def _tab_proto(ctx: RunContext) -> None:
    protocols = ["rdp", "x", "lbx"]
    points = ctx.executor.map(
        "tab-proto",
        partial(_tab_proto_point, seed=ctx.seed),
        protocols,
        seed=ctx.seed,
    )
    rows = [
        (
            name,
            f"{total_bytes:,}",
            f"{total_messages:,}",
            f"{avg_size:.1f}",
            f"{savings * 100:.2f}%",
        )
        for name, (total_bytes, total_messages, avg_size, savings) in zip(
            protocols, points
        )
    ]
    ctx.out.write(
        format_table(
            ["protocol", "bytes", "messages", "avg size", "VIP savings"],
            rows,
            title="§6.1.2: protocol comparison + VIP table",
        )
        + "\n"
    )
    if ctx.csv_dir:
        write_csv(
            f"{ctx.csv_dir}/tab_proto.csv",
            ["protocol", "bytes", "messages", "avg_size", "vip_savings"],
            rows,
        )


@experiment("tab-setup", title="Session setup costs")
def _tab_setup(ctx: RunContext) -> None:
    from .gui import TSE_SETUP, X_SETUP

    ctx.out.write(
        format_table(
            ["system", "setup bytes"],
            [
                ("nt_tse (RDP)", f"{TSE_SETUP.total_bytes:,}"),
                ("linux (X)", f"{X_SETUP.total_bytes:,}"),
            ],
            title="§6.1.1: session setup costs",
        )
        + "\n"
    )


# Fleet, analytic, SLO, and scale experiments register here, after the
# paper set, so ``run all`` appends them without disturbing the historical
# order.  Registration is an explicit, idempotent call — not an import
# side effect — so the registry order is identical no matter which
# experiments module a process happens to import first (each of them
# circularly imports this module at its bottom, landing right here).
from .fleet import experiments as _fleet_experiments  # noqa: E402

_fleet_experiments._register()

from .analytic import experiments as _analytic_experiments  # noqa: E402

_analytic_experiments._register()

from .slo import experiments as _slo_experiments  # noqa: E402

_slo_experiments._register()

from .scale import experiments as _scale_experiments  # noqa: E402

_scale_experiments._register()


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI: ``list`` and ``run <experiment> [options]``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Wong & Seltzer "
        "(USENIX 2000) on the simulation substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    trace = sub.add_parser(
        "trace",
        help="run one experiment (or 'all') with structured tracing and "
        "metrics on",
    )
    for cmd in (run, trace):
        cmd.add_argument(
            "experiment", help="experiment id from 'list', or 'all'"
        )
        cmd.add_argument("--seed", type=int, default=0, help="master RNG seed")
        cmd.add_argument(
            "--csv",
            metavar="DIR",
            default=None,
            help="also write CSV series into DIR",
        )
        cmd.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="run sweep points on N worker processes (output is "
            "byte-identical to --jobs 1)",
        )
        cmd.add_argument(
            "--cache-dir",
            metavar="PATH",
            default=None,
            help="cache finished sweep points in PATH; reruns replay them "
            "from disk",
        )
        cmd.add_argument(
            "--no-cache",
            action="store_true",
            help="recompute every point even if --cache-dir has it",
        )
        cmd.add_argument(
            "--trace-dir",
            metavar="PATH",
            default=None,
            help="write <experiment>.trace.jsonl and <experiment>.metrics.json "
            "into PATH (implies tracing; artifacts are byte-stable across "
            "--jobs and cached reruns)",
        )
        cmd.add_argument(
            "--faults",
            metavar="SPEC",
            default=None,
            help="inject deterministic network faults, e.g. "
            "'loss=0.05,jitter_ms=3,corrupt=0.01,outage=1000-2000' "
            "(see repro.net.faults.FaultPlan.parse)",
        )
        cmd.add_argument(
            "--fault-seed",
            type=int,
            default=0,
            metavar="N",
            help="seed of the fault schedule; a fixed seed reproduces the "
            "exact same losses across serial, --jobs, and cached runs",
        )
    return parser


def main(
    argv: Optional[List[str]] = None,
    out: TextIO = sys.stdout,
    progress: Optional[TextIO] = None,
) -> int:
    """CLI entry point; returns a process exit code.

    *progress* receives per-point timing lines (defaults to stderr when
    invoked as a real CLI; pass ``None``-producing streams in tests to
    keep them quiet).
    """
    args = build_parser().parse_args(argv)
    if args.command == "list":
        tables = [
            format_table(
                ["id", "reproduces"],
                [(spec.name, spec.title) for spec in group_specs],
                title=f"Available experiments — {group}",
            )
            for group, group_specs in groups().items()
        ]
        out.write("\n\n".join(tables) + "\n")
        return 0

    if args.jobs < 1:
        out.write(f"--jobs must be >= 1, got {args.jobs}\n")
        return 2
    faults = args.faults
    if faults is not None:
        from .net import FaultPlan

        try:
            # Canonicalize, so equivalent specs share cache entries.
            faults = FaultPlan.parse(faults, seed=args.fault_seed).spec()
        except ReproError as exc:
            out.write(f"bad --faults spec: {exc}\n")
            return 2
    observing = args.command == "trace" or args.trace_dir is not None
    ctx = RunContext(
        seed=args.seed,
        out=out,
        csv_dir=args.csv,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        progress=progress,
        trace_dir=args.trace_dir,
        observe=observing,
        faults=faults,
        fault_seed=args.fault_seed,
    )
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        experiment_spec = EXPERIMENTS.get(name)
        if experiment_spec is None:
            out.write(
                f"unknown experiment {name!r}; try 'python -m repro list'\n"
            )
            return 2
        try:
            experiment_spec.run(ctx)
        except ReproError as exc:
            out.write(f"experiment {name} failed: {exc}\n")
            return 1
        if observing:
            observations = ctx.take_observations()
            if args.trace_dir is not None:
                write_run_artifacts(
                    args.trace_dir, name, args.seed, observations
                )
            out.write(
                format_metrics_summary(name, summary_rows(observations))
                + "\n"
            )
        out.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main(progress=sys.stderr))
