"""Command-line experiment runner.

Regenerate any of the paper's tables and figures without writing code::

    python -m repro list
    python -m repro run fig3 --seed 1
    python -m repro run tab-proto
    python -m repro run all --out results/

Each experiment prints the same rows/series its benchmark emits; ``--csv``
additionally writes machine-readable series next to the text output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, TextIO

from .core.report import format_series, format_table, write_csv
from .errors import ReproError


class Experiment:
    """One named, runnable reproduction."""

    def __init__(
        self,
        name: str,
        title: str,
        run: Callable[[int, TextIO, Optional[str]], None],
    ) -> None:
        self.name = name
        self.title = title
        self.run = run


def _fig1(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .core.report import sparkline
    from .cpu import OS_NAMES, run_idle_experiment

    rows = []
    for os_name in OS_NAMES:
        result = run_idle_experiment(os_name, 60_000.0, seed=seed)
        times, utils = result.utilization_trace(bin_ms=1_000.0)
        rows.append(
            (os_name, f"{result.idle_utilization * 100:.2f}%", sparkline(utils[:30]))
        )
        if csv_dir:
            write_csv(
                f"{csv_dir}/fig1_{os_name}.csv",
                ["time_ms", "utilization"],
                zip(times, utils),
            )
    out.write(
        format_table(
            ["system", "avg idle util", "trace"],
            rows,
            title="Figure 1: idle-state processor activity",
        )
        + "\n"
    )


def _fig2(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .cpu import FIG2_THRESHOLDS_MS, OS_NAMES, run_idle_experiment

    rows = []
    for os_name in OS_NAMES:
        result = run_idle_experiment(os_name, 600_000.0, seed=seed)
        thresholds, curve = result.cumulative_latency_curve()
        rows.append((os_name, f"{result.total_lost_time_ms / 1000:.1f}s"))
        if csv_dir:
            write_csv(
                f"{csv_dir}/fig2_{os_name}.csv",
                ["threshold_ms", "cumulative_latency_s"],
                zip(thresholds, curve),
            )
    out.write(
        format_table(
            ["system", "total lost time / 10 min"],
            rows,
            title="Figure 2: cumulative idle-state latency",
        )
        + "\n"
    )


def _fig3(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .workloads import run_stall_experiment

    sweeps = {
        "nt_tse": [0, 5, 10, 15],
        "linux": [0, 5, 10, 15, 25, 35, 50],
    }
    rows = []
    for os_name, loads in sweeps.items():
        results = run_stall_experiment(os_name, loads, seed=seed)
        for r in results:
            rows.append((os_name, r.queue_length, f"{r.average_stall_ms:.0f}"))
        if csv_dir:
            write_csv(
                f"{csv_dir}/fig3_{os_name}.csv",
                ["queue_length", "avg_stall_ms"],
                [(r.queue_length, r.average_stall_ms) for r in results],
            )
    out.write(
        format_table(
            ["system", "queue length", "avg stall (ms)"],
            rows,
            title="Figure 3: stall length vs scheduler queue length",
        )
        + "\n"
    )


def _tab_mem(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .memory import run_memory_latency_experiment

    rows = []
    for os_name in ("linux", "nt_tse"):
        for demand, label in ((0.5, "<100%"), (1.2, ">=100%")):
            s = run_memory_latency_experiment(
                os_name, demand, runs=10, seed=seed
            ).summary
            rows.append(
                (os_name, label, f"{s.minimum:.0f}", f"{s.average:.0f}", f"{s.maximum:.0f}")
            )
    out.write(
        format_table(
            ["OS", "demand", "min", "avg", "max"],
            rows,
            title="§5.2: keystroke latency (ms) under page demand",
        )
        + "\n"
    )
    if csv_dir:
        write_csv(
            f"{csv_dir}/tab_mem_latency.csv",
            ["os", "demand", "min_ms", "avg_ms", "max_ms"],
            rows,
        )


def _tab_sessions(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .memory import LINUX_SESSION, TSE_SESSION_LIGHT, TSE_SESSION_TYPICAL

    for session in (LINUX_SESSION, TSE_SESSION_TYPICAL, TSE_SESSION_LIGHT):
        rows = [(p.name, f"{p.private_kb:,} KB") for p in session.processes]
        rows.append(("Total", f"{session.total_kb:,} KB"))
        out.write(
            format_table(
                ["process", "private"],
                rows,
                title=f"§5.1.1 login: {session.os_name} ({session.variant})",
            )
            + "\n"
        )


def _tab_proto(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .workloads import run_protocol_comparison

    taps = run_protocol_comparison(seed=seed)
    rows = []
    for name in ("rdp", "x", "lbx"):
        t = taps[name].trace()
        v = taps[name].vip_table_row()
        rows.append(
            (
                name,
                f"{t.total_bytes:,}",
                f"{t.total_messages:,}",
                f"{t.avg_message_size:.1f}",
                f"{v['savings'] * 100:.2f}%",
            )
        )
    out.write(
        format_table(
            ["protocol", "bytes", "messages", "avg size", "VIP savings"],
            rows,
            title="§6.1.2: protocol comparison + VIP table",
        )
        + "\n"
    )
    if csv_dir:
        write_csv(
            f"{csv_dir}/tab_proto.csv",
            ["protocol", "bytes", "messages", "avg_size", "vip_savings"],
            rows,
        )


def _tab_setup(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .gui import TSE_SETUP, X_SETUP

    out.write(
        format_table(
            ["system", "setup bytes"],
            [
                ("nt_tse (RDP)", f"{TSE_SETUP.total_bytes:,}"),
                ("linux (X)", f"{X_SETUP.total_bytes:,}"),
            ],
            title="§6.1.1: session setup costs",
        )
        + "\n"
    )


def _fig4(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .workloads import run_webpage_experiment

    rows = []
    for variant in ("marquee", "banner", "both"):
        result = run_webpage_experiment(variant, duration_ms=160_000.0)
        rows.append((variant, f"{result.average_mbps():.3f}"))
        if csv_dir:
            times, mbps = result.load_series(2_000.0)
            write_csv(
                f"{csv_dir}/fig4_{variant}.csv",
                ["time_ms", "mbps"],
                zip(times, mbps),
            )
    out.write(
        format_table(
            ["variant", "avg Mbps"],
            rows,
            title="Figure 4: synthetic web page over RDP",
        )
        + "\n"
    )


def _fig5(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .workloads import run_gif_protocol_comparison

    results = run_gif_protocol_comparison(duration_ms=5_000.0)
    rows = []
    for name in ("x", "lbx", "rdp"):
        rows.append((name, f"{results[name].average_mbps(500.0):.3f}"))
        if csv_dir:
            times, mbps = results[name].load_series(100.0)
            write_csv(
                f"{csv_dir}/fig5_{name}.csv", ["time_ms", "mbps"], zip(times, mbps)
            )
    out.write(
        format_table(
            ["protocol", "steady Mbps"],
            rows,
            title="Figure 5: 10-frame 20 Hz GIF",
        )
        + "\n"
    )


def _fig6(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .workloads import run_cache_overflow_experiment

    result = run_cache_overflow_experiment(66, 60_000.0)
    out.write(
        format_series(
            "time (s)",
            "cumulative hit ratio",
            [int(t / 1000) for t in result.times_ms[::10]],
            result.cumulative_hit_ratio[::10],
            title="Figure 6: 66-frame animation overflowing the cache",
        )
        + "\n"
    )
    if csv_dir:
        write_csv(
            f"{csv_dir}/fig6.csv",
            ["time_ms", "cpu_utilization", "cumulative_hit_ratio"],
            zip(result.times_ms, result.cpu_utilization, result.cumulative_hit_ratio),
        )


def _fig7(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .workloads import run_frame_count_sweep

    rows = run_frame_count_sweep(
        [25, 35, 45, 55, 65, 66, 70, 80, 90, 100], duration_ms=60_000.0
    )
    out.write(
        format_series(
            "frames",
            "Mbps",
            [c for c, __ in rows],
            [m for __, m in rows],
            title="Figure 7: network load vs frame count",
        )
        + "\n"
    )
    if csv_dir:
        write_csv(f"{csv_dir}/fig7.csv", ["frames", "mbps"], rows)


def _fig8(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .net import run_ping_experiment

    results = run_ping_experiment(
        [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 9.6], duration_ms=60_000.0, seed=seed
    )
    out.write(
        format_series(
            "offered Mbps",
            "mean RTT (ms)",
            [r.offered_mbps for r in results],
            [r.mean_rtt_ms for r in results],
            title="Figure 8: RTT vs offered load",
        )
        + "\n"
    )
    if csv_dir:
        write_csv(
            f"{csv_dir}/fig8.csv",
            ["offered_mbps", "mean_rtt_ms", "rtt_variance"],
            [(r.offered_mbps, r.mean_rtt_ms, r.rtt_variance) for r in results],
        )


def _fig9(seed: int, out: TextIO, csv_dir: Optional[str]) -> None:
    from .net import run_ping_experiment

    results = run_ping_experiment(
        [0, 2, 4, 6, 8, 9, 9.6], duration_ms=60_000.0, seed=seed
    )
    out.write(
        format_series(
            "offered Mbps",
            "RTT variance (ms^2)",
            [r.offered_mbps for r in results],
            [r.rtt_variance for r in results],
            title="Figure 9: RTT jitter vs offered load",
            y_format="{:.2f}",
        )
        + "\n"
    )


EXPERIMENTS: Dict[str, Experiment] = {
    e.name: e
    for e in (
        Experiment("fig1", "Idle-state CPU activity traces", _fig1),
        Experiment("fig2", "Cumulative idle-state latency", _fig2),
        Experiment("fig3", "Stall length vs scheduler queue length", _fig3),
        Experiment("fig4", "Synthetic web page network load", _fig4),
        Experiment("fig5", "10-frame GIF over X/LBX/RDP", _fig5),
        Experiment("fig6", "Cache overflow: hit ratio + CPU", _fig6),
        Experiment("fig7", "Network load vs frame count (cache cliff)", _fig7),
        Experiment("fig8", "RTT vs offered load", _fig8),
        Experiment("fig9", "RTT variance vs offered load", _fig9),
        Experiment("tab-mem", "Keystroke latency under page demand", _tab_mem),
        Experiment("tab-sessions", "Per-login session memory", _tab_sessions),
        Experiment("tab-proto", "Protocol comparison + VIP savings", _tab_proto),
        Experiment("tab-setup", "Session setup costs", _tab_setup),
    )
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI: ``list`` and ``run <experiment> [--seed] [--csv]``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of Wong & Seltzer "
        "(USENIX 2000) on the simulation substrate.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id from 'list', or 'all'")
    run.add_argument("--seed", type=int, default=0, help="master RNG seed")
    run.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write CSV series into DIR",
    )
    return parser


def main(argv: Optional[List[str]] = None, out: TextIO = sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        out.write(
            format_table(
                ["id", "reproduces"],
                [(e.name, e.title) for e in EXPERIMENTS.values()],
                title="Available experiments",
            )
            + "\n"
        )
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        experiment = EXPERIMENTS.get(name)
        if experiment is None:
            out.write(
                f"unknown experiment {name!r}; try 'python -m repro list'\n"
            )
            return 2
        try:
            experiment.run(args.seed, out, args.csv)
        except ReproError as exc:
            out.write(f"experiment {name} failed: {exc}\n")
            return 1
        out.write("\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
